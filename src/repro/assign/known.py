"""Known-assignment (comm-aware) deadline distribution — the [5] setting.

Di Natale & Stankovic's original slicing assumed the task assignment was
fully known, so the critical-path evaluation could charge *exact*
interprocessor communication costs.  Jonsson's §4.3 finding is that,
under relaxed locality, it is better to "assume that there will be no
communication cost" — and that this holds "even in the presence of
significant communication cost", because zero-cost assumptions maximize
the laxity available for distribution.

This module implements the comm-aware side of that comparison, given a
strict :class:`~repro.assign.clustering.TaskAssignment`:

1. **augmentation** — every cross-processor arc with a positive message
   size becomes a *message pseudo-task* whose execution time is the
   exact bus cost; the arc ``i → j`` becomes ``i → msg → j``;
2. the ordinary slicing algorithm runs on the augmented graph (message
   tasks participate in critical paths and receive laxity, which acts
   as communication-jitter margin);
3. the message windows are stripped: real tasks keep their windows, and
   each message's window is exactly the gap slicing reserved for it.

Comparing :func:`distribute_known_assignment` (comm-aware) against the
standard :func:`~repro.core.slicing.distribute_deadlines` with exact
execution times (comm-blind) on the same strict assignment reproduces
the §4.3 experiment — see ``benchmarks/test_bench_comm_aware.py``.
"""

from __future__ import annotations

from ..core.assignment import DeadlineAssignment
from ..core.metrics import AdaptiveParams, get_metric
from ..core.slicing import slice_with_state
from ..errors import DistributionError
from ..graph.task import Task
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..types import Time
from .clustering import TaskAssignment, exact_estimates

__all__ = ["augment_with_messages", "distribute_known_assignment", "MSG_CLASS"]

#: Pseudo processor class carried by message tasks.  Message tasks are
#: never scheduled on a processor — their windows become bus gaps — so
#: the class exists only to satisfy the task model.
MSG_CLASS = "__msg__"


def _msg_id(src: str, dst: str) -> str:
    return f"__msg__{src}->{dst}"


def augment_with_messages(
    graph: TaskGraph,
    platform: Platform,
    assignment: TaskAssignment,
) -> tuple[TaskGraph, dict[str, Time]]:
    """Insert message pseudo-tasks on every costed cross-processor arc.

    Returns the augmented graph and the message execution-time map
    (message id → exact worst-case bus cost).  Zero-cost arcs (same
    processor, or empty messages) are kept as plain precedence.
    """
    out = TaskGraph()
    for task in graph.tasks():
        out.add_task(task)
    messages: dict[str, Time] = {}
    for src, dst, size in graph.edges():
        p_src = assignment.processor_of(src)
        p_dst = assignment.processor_of(dst)
        cost = platform.communication_cost(p_src, p_dst, size)
        if cost <= 0.0:
            out.add_edge(src, dst, size)
            continue
        mid = _msg_id(src, dst)
        out.add_task(Task(id=mid, wcet={MSG_CLASS: cost}, label="message"))
        out.add_edge(src, mid, size)
        out.add_edge(mid, dst, 0.0)
        messages[mid] = cost
    for (a1, a2), d in graph.e2e_deadlines().items():
        out.set_e2e_deadline(a1, a2, d)
    return out, messages


def distribute_known_assignment(
    graph: TaskGraph,
    platform: Platform,
    assignment: TaskAssignment,
    metric: str = "NORM",
    *,
    params: AdaptiveParams | None = None,
) -> DeadlineAssignment:
    """Comm-aware deadline distribution under a strict assignment.

    Uses exact per-task execution times (the information a known
    assignment provides) *and* exact communication costs on the
    critical paths, i.e. the original [5] setting.  The returned
    assignment covers the real tasks only; the message gaps are folded
    into the window chain (a successor's arrival already includes its
    incoming message's reserved window).
    """
    augmented, messages = augment_with_messages(graph, platform, assignment)
    estimates = exact_estimates(graph, platform, assignment)
    estimates.update(messages)

    metric_obj = get_metric(metric, params)
    state = metric_obj.prepare(augmented, estimates, platform)
    full = slice_with_state(augmented, metric_obj, state)

    windows = {
        tid: w for tid, w in full.windows.items() if tid not in messages
    }
    missing = set(graph.task_ids()) - set(windows)
    if missing:
        raise DistributionError(
            f"distribution left tasks unassigned: {sorted(missing)[:5]}"
        )
    return DeadlineAssignment(
        windows=windows,
        metric_name=f"{metric_obj.name}/comm-aware",
        estimator_name="EXACT",
        paths=[
            tuple(t for t in path if t not in messages)
            for path in full.paths
        ],
        degenerate=full.degenerate,
    )
