"""Clustering-based task-to-processor assignment (cf. reference [1]).

The paper's premise is *relaxed* locality constraints: assignment is
unknown when deadlines are distributed.  The conventional alternative —
the setting of Di Natale & Stankovic [5] and the allocation literature
the paper cites ([1]) — fixes the assignment first.  This module
implements that substrate so the two regimes can be compared:

1. **Edge-zeroing clustering** (Sarkar-style): walk the arcs in
   decreasing message-size order and merge the endpoint clusters when
   (a) the merged tasks share an eligible processor class that the
   platform instantiates and (b) the merged load stays under a balance
   cap (``balance_factor × total/m``).  Heavy communicators end up
   co-located, zeroing their bus traffic — the behaviour the paper's
   "assume no communication cost" heuristic (§4.3) banks on.
2. **LPT mapping**: clusters are placed heaviest-first onto the
   least-loaded *compatible* processor.

The resulting strict assignment enables exact per-task execution times
(``c_i[e(p(tau_i))]``) and exact communication costs, i.e. the inputs
conventional deadline distribution requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.estimation import WCET_AVG, estimate_map
from ..errors import EligibilityError, PlatformError
from ..graph.taskgraph import TaskGraph
from ..system.platform import Platform
from ..types import Time

__all__ = ["TaskAssignment", "cluster_assignment", "exact_estimates"]


@dataclass(frozen=True)
class TaskAssignment:
    """A strict task-to-processor mapping with provenance."""

    mapping: dict[str, str]
    n_clusters: int
    zeroed_traffic: float  # message volume made intra-processor

    def processor_of(self, task_id: str) -> str:
        try:
            return self.mapping[task_id]
        except KeyError:
            raise PlatformError(f"task {task_id!r} is unassigned") from None

    def tasks_on(self, proc_id: str) -> list[str]:
        return sorted(t for t, p in self.mapping.items() if p == proc_id)


class _UnionFind:
    def __init__(self, items: list[str]) -> None:
        self._parent = {x: x for x in items}

    def find(self, x: str) -> str:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: str, b: str) -> None:
        self._parent[self.find(a)] = self.find(b)


def cluster_assignment(
    graph: TaskGraph,
    platform: Platform,
    *,
    balance_factor: float = 1.5,
) -> TaskAssignment:
    """Compute a strict assignment by clustering + LPT mapping.

    ``balance_factor`` caps each cluster's estimated load at
    ``balance_factor × (total workload / m)``; values below ~1 prevent
    almost all merging, large values converge to one cluster per
    connected component.
    """
    if balance_factor <= 0.0:
        raise PlatformError("balance factor must be positive")
    estimates = estimate_map(graph, WCET_AVG, platform)
    total = sum(estimates.values())
    cap = balance_factor * total / platform.m
    used_classes = set(platform.used_class_ids())

    ids = graph.task_ids()
    uf = _UnionFind(ids)
    load = {tid: estimates[tid] for tid in ids}
    classes = {
        tid: graph.task(tid).eligible_classes() & used_classes for tid in ids
    }
    for tid, cls in classes.items():
        if not cls:
            raise EligibilityError(
                f"task {tid!r} has no eligible class on this platform"
            )

    zeroed = 0.0
    edges = sorted(graph.edges(), key=lambda e: (-e[2], e[0], e[1]))
    for src, dst, size in edges:
        ra, rb = uf.find(src), uf.find(dst)
        if ra == rb:
            zeroed += size
            continue
        common = classes[ra] & classes[rb]
        if not common:
            continue
        if load[ra] + load[rb] > cap:
            continue
        uf.union(ra, rb)
        root = uf.find(ra)
        other = rb if root == ra else ra
        load[root] = load[ra] + load[rb]
        classes[root] = common
        del load[other], classes[other]
        zeroed += size

    # Group tasks by cluster root.
    clusters: dict[str, list[str]] = {}
    for tid in ids:
        clusters.setdefault(uf.find(tid), []).append(tid)

    # LPT mapping: heaviest cluster first to the least-loaded
    # compatible processor.
    proc_load: dict[str, Time] = {p.id: 0.0 for p in platform.processors()}
    mapping: dict[str, str] = {}
    order = sorted(clusters, key=lambda r: (-load[r], r))
    for root in order:
        eligible = [
            p for p in platform.processors() if p.cls in classes[root]
        ]
        if not eligible:  # unreachable: classes[root] ⊆ used classes
            raise EligibilityError(
                f"cluster of {root!r} has no compatible processor"
            )
        best = min(eligible, key=lambda p: (proc_load[p.id], p.id))
        for tid in clusters[root]:
            mapping[tid] = best.id
        proc_load[best.id] += load[root]

    return TaskAssignment(
        mapping=mapping, n_clusters=len(clusters), zeroed_traffic=zeroed
    )


def exact_estimates(
    graph: TaskGraph, platform: Platform, assignment: TaskAssignment
) -> dict[str, Time]:
    """Exact execution times under a strict assignment.

    With the assignment known, the estimated WCET ``c̄_i`` collapses to
    the true ``c_i[e(p(tau_i))]`` — the information advantage strict
    locality constraints give conventional deadline distribution.
    """
    out: dict[str, Time] = {}
    for tid in graph.task_ids():
        proc = assignment.processor_of(tid)
        out[tid] = platform.wcet_of(graph.task(tid), proc)
    return out
