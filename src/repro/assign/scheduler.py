"""EDF list scheduling under a strict (pre-fixed) task assignment.

Identical to the baseline of §5.4 except that each task's processor is
dictated by a :class:`~repro.assign.clustering.TaskAssignment` instead
of chosen greedily — the conventional strict-locality regime the paper
contrasts with.
"""

from __future__ import annotations

from ..errors import SchedulingError
from ..sched.edf import EdfListScheduler
from .clustering import TaskAssignment

__all__ = ["FixedAssignmentEdfScheduler"]


class FixedAssignmentEdfScheduler(EdfListScheduler):
    """EDF dispatch with task placement fixed by a strict assignment."""

    name = "EDF-FIXED"

    def __init__(
        self, assignment: TaskAssignment, *, continue_on_miss: bool = False
    ) -> None:
        super().__init__(continue_on_miss=continue_on_miss)
        self._fixed = assignment

    def _best_placement(
        self,
        tid,
        task,
        graph,
        platform,
        entries,
        proc_free,
        resource_free,
        comm_model,
        arrival,
        predecessors=None,
        processors=None,
    ):
        proc_id = self._fixed.processor_of(tid)
        cls = platform.class_of(proc_id)
        if not task.is_eligible(cls):
            raise SchedulingError(
                f"strict assignment places task {tid!r} on processor "
                f"{proc_id!r} (class {cls!r}) where it is ineligible"
            )
        if predecessors is None:
            predecessors = graph.predecessors(tid)
        resource_floor = max(
            (resource_free.get(r, 0.0) for r in task.resources), default=0.0
        )
        data_ready = arrival
        for pred in predecessors:
            entry = entries.get(pred)
            if entry is None:
                continue
            delay = comm_model.cost(
                entry.processor, proc_id, graph.message_size(pred, tid)
            )
            data_ready = max(data_ready, entry.finish + delay)
        start = max(data_ready, proc_free[proc_id], resource_floor)
        finish = start + task.wcet_on(cls)
        return proc_id, start, finish
