"""Strict-locality task assignment (the conventional regime, cf. [1])."""

from .clustering import TaskAssignment, cluster_assignment, exact_estimates
from .known import (
    MSG_CLASS,
    augment_with_messages,
    distribute_known_assignment,
)
from .scheduler import FixedAssignmentEdfScheduler

__all__ = [
    "TaskAssignment",
    "cluster_assignment",
    "exact_estimates",
    "FixedAssignmentEdfScheduler",
    "augment_with_messages",
    "distribute_known_assignment",
    "MSG_CLASS",
]
