"""Persistent, content-addressed result store (trial cells, assignments).

Deterministic seeds plus canonical serialization make every trial (and
every service assignment) a pure function of its digested inputs, so
results can be memoized *durably*: a warm re-run of a sweep, a resumed
interrupted sweep, or a delta sweep that adds one series to an existing
grid all skip the work that is already on disk — while staying
bit-identical to uncached execution, because the store holds the exact
aggregates the engine would have produced.

Layout of a store directory::

    <root>/
      MANIFEST.json        # format marker + salt provenance (atomic rename)
      .lock                # cross-process append/compact lock
      segments/
        <hh>.jsonl         # append-only JSONL segment, hh = key[:2]

Records are one JSON object per line, ``{"k": <sha256 hex>, "v": ...}``,
sharded by the first two hex digits of the key.  Appends happen under an
exclusive :class:`~repro.store.filelock.FileLock`, so concurrent
processes (``jobs > 1`` sweeps, a sweep racing a service) interleave
whole lines and never corrupt each other; duplicate appends of the same
key are harmless because content addressing guarantees equal values
(last one wins on load).  :meth:`TrialStore.compact` rewrites segments
through a temp file + ``os.replace`` — readers always see either the
old or the new segment, never a torn one — deduplicating records and,
with ``max_bytes``, evicting the oldest records first.

Keys come from :func:`store_key`: a SHA-256 over the canonical JSON of
``(format, salt, kind, payload)``.  The *salt* folds the schema and
code version into the address — bump :data:`CODE_SALT` whenever trial
semantics change (generator, slicing, scheduling, aggregation) and
every stale entry silently stops matching, no migration needed.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Iterable

from ..errors import StoreError
from .filelock import FileLock

__all__ = ["TrialStore", "StoreStats", "store_key", "CODE_SALT", "FORMAT"]

FORMAT = "repro.trialstore/1"

#: Schema+code salt folded into every experiment-record key.  Bump when
#: the meaning of a stored record changes — new trial semantics, a
#: different aggregation, a generator fix — so old entries stop
#: matching instead of being served stale.
CODE_SALT = "trial-semantics/1"

_SHARD_CHARS = 2


def store_key(kind: str, payload: Any, *, salt: str = CODE_SALT) -> str:
    """Content address of one record: SHA-256 of its canonical JSON.

    *payload* must be JSON-serializable with finite numbers only (the
    canonical form rejects NaN/Infinity so every writer derives the
    same bytes).  *kind* namespaces record families ("cell-chunk",
    "assignment", ...); *salt* versions the producing code.
    """
    doc = {"format": FORMAT, "salt": salt, "kind": kind, "payload": payload}
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(text.encode()).hexdigest()


class StoreStats:
    """Immutable snapshot of one store's counters.

    ``records``/``bytes`` describe current contents (keys known in
    memory, on-disk segment bytes); the rest are monotone counters over
    the store object's lifetime.
    """

    __slots__ = ("hits", "misses", "appends", "evictions", "records", "bytes")

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        appends: int = 0,
        evictions: int = 0,
        records: int = 0,
        bytes: int = 0,
    ) -> None:
        self.hits = hits
        self.misses = misses
        self.appends = appends
        self.evictions = evictions
        self.records = records
        self.bytes = bytes

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def since(self, earlier: "StoreStats") -> "StoreStats":
        """Counter deltas relative to an *earlier* snapshot.

        ``records``/``bytes`` stay absolute (they are states, not
        counters) — the result answers "what did this run do".
        """
        return StoreStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            appends=self.appends - earlier.appends,
            evictions=self.evictions - earlier.evictions,
            records=self.records,
            bytes=self.bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreStats(hits={self.hits}, misses={self.misses}, "
            f"appends={self.appends}, evictions={self.evictions}, "
            f"records={self.records}, bytes={self.bytes})"
        )


class TrialStore:
    """Content-addressed persistent key → JSON-document store.

    Parameters
    ----------
    root:
        Store directory; created (with parents) if missing.
    max_bytes:
        Optional on-disk budget.  Checked on open and on
        :meth:`compact`: when segments exceed it, the oldest records
        are evicted (compaction rewrites the segments atomically).
    fsync:
        Force appends to stable storage before releasing the lock.
        Off by default — the store is a cache; a truncated tail line
        after a crash is skipped on load, costing a recompute.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int | None = None,
        fsync: bool = False,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._fsync = fsync
        self._segments = self.root / "segments"
        self._segments.mkdir(parents=True, exist_ok=True)
        self._lock = FileLock(self.root / ".lock")
        self._mutex = threading.RLock()
        self._maps: dict[str, dict[str, Any]] = {}
        self._offsets: dict[str, int] = {}
        self._hits = 0
        self._misses = 0
        self._appends = 0
        self._evictions = 0
        self._closed = False
        self._check_manifest()
        if max_bytes is not None and self.total_bytes() > max_bytes:
            self.compact(max_bytes=max_bytes)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _check_manifest(self) -> None:
        path = self.root / "MANIFEST.json"
        if path.exists():
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                raise StoreError(f"unreadable store manifest {path}: {exc}") from exc
            fmt = doc.get("format")
            if fmt != FORMAT:
                raise StoreError(
                    f"store at {self.root} has format {fmt!r}; this code "
                    f"reads {FORMAT!r}"
                )
            return
        self._write_atomic(
            path,
            json.dumps(
                {"format": FORMAT, "shard_chars": _SHARD_CHARS}, indent=2
            )
            + "\n",
        )

    def _write_atomic(self, path: Path, text: str) -> None:
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(text)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @staticmethod
    def _shard_of(key: str) -> str:
        if len(key) <= _SHARD_CHARS:
            raise StoreError(f"malformed store key {key!r}")
        return key[:_SHARD_CHARS]

    def _shard_path(self, shard: str) -> Path:
        return self._segments / f"{shard}.jsonl"

    def _refresh(self, shard: str) -> dict[str, Any]:
        """Bring one shard's in-memory map up to date with the file.

        Reads only the unseen tail (``offset`` → EOF).  A trailing
        partial line — a writer crashed mid-append — is left unconsumed
        and skipped if undecodable; whole-line appends under the file
        lock guarantee everything before it is intact.
        """
        mapping = self._maps.setdefault(shard, {})
        offset = self._offsets.get(shard, 0)
        path = self._shard_path(shard)
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            return mapping
        if size <= offset:
            return mapping
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
        consumed = data.rfind(b"\n") + 1
        for line in data[:consumed].splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                mapping[record["k"]] = record["v"]
            except (ValueError, KeyError, TypeError):
                continue  # torn or foreign line: treat as a miss
        self._offsets[shard] = offset + consumed
        return mapping

    def get(self, key: str) -> Any | None:
        """Look up *key*; ``None`` on miss.  Sees other processes' appends."""
        shard = self._shard_of(key)
        with self._mutex:
            mapping = self._maps.get(shard)
            if mapping is None or key not in mapping:
                mapping = self._refresh(shard)
            value = mapping.get(key)
            if value is None:
                self._misses += 1
            else:
                self._hits += 1
            return value

    def __contains__(self, key: str) -> bool:
        shard = self._shard_of(key)
        with self._mutex:
            return key in self._refresh(shard)

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Insert one record (no-op if *key* is already present)."""
        self.put_many([(key, value)])

    def put_many(self, items: Iterable[tuple[str, Any]]) -> int:
        """Append a batch of records under one lock acquisition.

        Keys already present are skipped — content addressing makes a
        second value for the same key identical by construction, so
        rewriting it would only grow the segment.  Returns the number
        of records actually appended.
        """
        batch = [(k, v) for k, v in items]
        if not batch:
            return 0
        if self._closed:
            raise StoreError(f"store at {self.root} is closed")
        appended = 0
        with self._mutex, self._lock:
            # Group by shard first so each touched shard is refreshed
            # (one stat + unseen-tail read) exactly once per batch, not
            # once per key — group commits land thousands of records of
            # a few shards.
            grouped: dict[str, list[tuple[str, Any]]] = {}
            for key, value in batch:
                grouped.setdefault(self._shard_of(key), []).append(
                    (key, value)
                )
            by_shard: dict[str, list[tuple[str, Any]]] = {}
            for shard, pairs in grouped.items():
                mapping = self._refresh(shard)
                for key, value in pairs:
                    if key in mapping:
                        continue
                    by_shard.setdefault(shard, []).append((key, value))
                    mapping[key] = value
            for shard, records in by_shard.items():
                text = "".join(
                    json.dumps({"k": k, "v": v}, separators=(",", ":")) + "\n"
                    for k, v in records
                )
                encoded = text.encode()
                path = self._shard_path(shard)
                # Heal a torn tail before appending: a writer killed
                # mid-append leaves a partial line with no newline, and
                # appending straight after it would glue the first new
                # record onto the garbage — losing that record to every
                # reader.  A leading newline isolates the torn bytes
                # into their own (skipped) line instead.
                size = 0
                torn_tail = False
                try:
                    size = path.stat().st_size
                except FileNotFoundError:
                    pass
                if size > 0:
                    with open(path, "rb") as fh:
                        fh.seek(-1, os.SEEK_END)
                        torn_tail = fh.read(1) != b"\n"
                with open(path, "ab") as fh:
                    if torn_tail:
                        fh.write(b"\n")
                    fh.write(encoded)
                    fh.flush()
                    if self._fsync:
                        os.fsync(fh.fileno())
                # We held the exclusive lock from refresh through write,
                # so everything up to the new EOF is either consumed,
                # torn garbage, or ours: mark it all consumed.
                self._offsets[shard] = (
                    size + (1 if torn_tail else 0) + len(encoded)
                )
                appended += len(records)
            self._appends += appended
        return appended

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _on_disk_shards(self) -> list[str]:
        return sorted(
            p.stem
            for p in self._segments.glob("*.jsonl")
            if len(p.stem) == _SHARD_CHARS
        )

    def total_bytes(self) -> int:
        """Current on-disk size of all segments."""
        return sum(
            p.stat().st_size for p in self._segments.glob("*.jsonl")
        )

    def verify(self) -> dict[str, int]:
        """Integrity scan of every segment; returns a counts report.

        Reads the raw segment bytes under the store lock (so no writer
        is mid-append) and classifies every line:

        * ``records`` — well-formed ``{"k": ..., "v": ...}`` lines;
        * ``duplicates`` — records whose key appeared earlier (benign:
          compaction removes them);
        * ``misplaced`` — records whose key does not match the shard
          file they sit in (never served; a sign of hand-edited
          segments);
        * ``torn`` — an unterminated trailing line (a writer crashed
          mid-append; healed automatically by the next append, dropped
          by compaction);
        * ``invalid`` — undecodable interior lines (real corruption).

        Purely read-only; pair with :meth:`compact` to repair.
        """
        report = {
            "shards": 0,
            "records": 0,
            "unique": 0,
            "duplicates": 0,
            "misplaced": 0,
            "torn": 0,
            "invalid": 0,
            "bytes": 0,
        }
        with self._mutex, self._lock:
            for shard in self._on_disk_shards():
                try:
                    data = self._shard_path(shard).read_bytes()
                except FileNotFoundError:  # pragma: no cover - racy unlink
                    continue
                report["shards"] += 1
                report["bytes"] += len(data)
                torn_tail = bool(data) and not data.endswith(b"\n")
                lines = data.split(b"\n")
                seen: set[str] = set()
                for i, line in enumerate(lines):
                    if not line.strip():
                        continue
                    last = i == len(lines) - 1
                    try:
                        record = json.loads(line)
                        key = record["k"]
                        record["v"]
                    except (ValueError, KeyError, TypeError):
                        if last and torn_tail:
                            report["torn"] += 1
                        else:
                            report["invalid"] += 1
                        continue
                    report["records"] += 1
                    if not isinstance(key, str) or not key.startswith(shard):
                        report["misplaced"] += 1
                    if key in seen:
                        report["duplicates"] += 1
                    else:
                        seen.add(key)
                        report["unique"] += 1
        return report

    def compact(self, max_bytes: int | None = None) -> int:
        """Rewrite every segment deduplicated; optionally evict to budget.

        Each segment is rewritten through a temp file and ``os.replace``
        — atomic on POSIX, so a concurrent reader sees the old or the
        new file, never a prefix.  With *max_bytes* (or the store's own
        ``max_bytes``), the oldest records of the largest segments are
        dropped first until the store fits.  Returns the number of
        evicted records.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        evicted = 0
        with self._mutex, self._lock:
            lines: dict[str, list[bytes]] = {}
            for shard in self._on_disk_shards():
                self._offsets[shard] = 0
                self._maps[shard] = {}
                mapping = self._refresh(shard)
                lines[shard] = [
                    json.dumps({"k": k, "v": v}, separators=(",", ":")).encode()
                    + b"\n"
                    for k, v in mapping.items()
                ]
            sizes = {s: sum(len(l) for l in ls) for s, ls in lines.items()}
            if budget is not None:
                while sum(sizes.values()) > budget and any(lines.values()):
                    shard = max(sizes, key=lambda s: sizes[s])
                    dropped = lines[shard].pop(0)  # oldest record first
                    sizes[shard] -= len(dropped)
                    key = json.loads(dropped)["k"]
                    del self._maps[shard][key]
                    evicted += 1
            for shard, shard_lines in lines.items():
                path = self._shard_path(shard)
                if not shard_lines:
                    path.unlink(missing_ok=True)
                    self._offsets[shard] = 0
                    continue
                tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
                with open(tmp, "wb") as fh:
                    fh.write(b"".join(shard_lines))
                    fh.flush()
                    if self._fsync:
                        os.fsync(fh.fileno())
                os.replace(tmp, path)
                self._offsets[shard] = sizes[shard]
            self._evictions += evicted
        return evicted

    def stats(self) -> StoreStats:
        with self._mutex:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                appends=self._appends,
                evictions=self._evictions,
                records=sum(len(m) for m in self._maps.values()),
                bytes=self.total_bytes(),
            )

    def close(self) -> None:
        """Mark the store closed; enforce ``max_bytes`` one last time."""
        if self._closed:
            return
        if self.max_bytes is not None and self.total_bytes() > self.max_bytes:
            self.compact(max_bytes=self.max_bytes)
        self._closed = True

    def __enter__(self) -> "TrialStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrialStore({str(self.root)!r}, {self.stats()!r})"
