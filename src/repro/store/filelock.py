"""Cross-process exclusive file lock for the result store.

The store's append path must be serialized across *processes*: two
``repro experiment --cache DIR`` invocations (or the experiment runner
and a ``repro serve --cache-dir DIR`` service) may share one store
directory.  POSIX ``flock`` gives exactly that — advisory, exclusive,
released automatically when the holder dies, so a crashed writer never
wedges the store.  On platforms without :mod:`fcntl` the lock degrades
to an atomic ``O_CREAT | O_EXCL`` spin lock with stale-lock takeover.

In-process (thread) exclusion is layered on top with a plain
:class:`threading.Lock`, because ``flock`` is per open file description
and would happily re-enter within one process.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]


class FileLock:
    """Exclusive advisory lock on a path, usable as a context manager.

    Reentrant within neither threads nor processes — the store takes it
    once around each batch of appends or one compaction, never nested.
    """

    #: Spin-lock fallback: seconds between acquisition attempts, and the
    #: age past which an abandoned lock file is considered stale.
    _SPIN_INTERVAL = 0.01
    _STALE_AFTER = 30.0

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._thread_lock = threading.Lock()
        self._fd: int | None = None

    def acquire(self) -> None:
        self._thread_lock.acquire()
        try:
            if fcntl is not None:
                fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
                fcntl.flock(fd, fcntl.LOCK_EX)
                self._fd = fd
            else:  # pragma: no cover - non-POSIX fallback
                self._fd = self._spin_acquire()
        except BaseException:
            self._thread_lock.release()
            raise

    def _spin_acquire(self) -> int:  # pragma: no cover - non-POSIX fallback
        while True:
            try:
                return os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                )
            except FileExistsError:
                try:
                    if (
                        time.time() - self.path.stat().st_mtime
                        > self._STALE_AFTER
                    ):
                        self.path.unlink(missing_ok=True)
                        continue
                except OSError:
                    pass
                time.sleep(self._SPIN_INTERVAL)

    def release(self) -> None:
        fd, self._fd = self._fd, None
        try:
            if fd is not None:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                else:  # pragma: no cover - non-POSIX fallback
                    self.path.unlink(missing_ok=True)
                os.close(fd)
        finally:
            self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
