"""Cross-process exclusive file lock for the result store.

The store's append path must be serialized across *processes*: two
``repro experiment --cache DIR`` invocations (or the experiment runner
and a ``repro serve --cache-dir DIR`` service) may share one store
directory.  POSIX ``flock`` gives exactly that — advisory, exclusive,
released automatically when the holder dies, so a crashed writer never
wedges the store.  On platforms without :mod:`fcntl` the lock degrades
to an atomic ``O_CREAT | O_EXCL`` spin lock with stale-lock takeover.

Stale-lock takeover in the spin fallback is deliberately conservative:

* a lock is judged abandoned only after *this* waiter has watched the
  same file — same inode, same mtime — sit unchanged for the full
  ``stale_after`` window on its own monotonic clock.  Comparing
  wall-clock time against ``st_mtime`` would falsely age fresh locks
  whenever the filesystem's clock disagrees with ours (NFS, containers).
* breaking the lock is atomic: the waiter first claims a shared token
  file (``<lock>.takeover``) with ``O_CREAT | O_EXCL`` — exactly one
  claimant can win — re-checks that the lock is still the very file it
  judged stale, and only then ``os.replace``\\ s the token over the lock
  path.  A waiter that loses the token race, or whose stale lock was
  replaced under it, backs off and keeps spinning; it never unlinks a
  lock it does not own.

In-process (thread) exclusion is layered on top with a plain
:class:`threading.Lock`, because ``flock`` is per open file description
and would happily re-enter within one process.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]

#: (st_ino, st_mtime_ns) — what "the same lock file" means for the
#: observed-age staleness rule.
_Identity = tuple[int, int]


class FileLock:
    """Exclusive advisory lock on a path, usable as a context manager.

    Reentrant within neither threads nor processes — the store takes it
    once around each batch of appends or one compaction, never nested.

    ``stale_after`` tunes the spin-fallback takeover window (seconds a
    lock file must sit unchanged before a waiter may break it); the
    ``flock`` fast path never needs it because the kernel releases a
    dead holder's lock automatically.
    """

    #: Spin-lock fallback: seconds between acquisition attempts, and the
    #: default observation window past which an unchanged lock file is
    #: considered abandoned.
    _SPIN_INTERVAL = 0.01
    _STALE_AFTER = 30.0

    def __init__(
        self, path: str | Path, *, stale_after: float | None = None
    ) -> None:
        self.path = Path(path)
        self._stale_after = (
            self._STALE_AFTER if stale_after is None else float(stale_after)
        )
        self._thread_lock = threading.Lock()
        self._fd: int | None = None

    def acquire(self) -> None:
        self._thread_lock.acquire()
        try:
            if fcntl is not None:
                fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
                fcntl.flock(fd, fcntl.LOCK_EX)
                self._fd = fd
            else:  # pragma: no cover - non-POSIX fallback
                self._fd = self._spin_acquire()
        except BaseException:
            self._thread_lock.release()
            raise

    @staticmethod
    def _identity(path: str | Path) -> _Identity | None:
        try:
            st = os.stat(path)
        except OSError:
            return None
        return (st.st_ino, st.st_mtime_ns)

    def _spin_acquire(self) -> int:
        token = Path(f"{self.path}.takeover")
        # Each entry: (identity when first seen, monotonic first-seen).
        lock_seen: tuple[_Identity, float] | None = None
        token_seen: tuple[_Identity, float] | None = None
        while True:
            try:
                return os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                )
            except FileExistsError:
                pass
            now = time.monotonic()
            ident = self._identity(self.path)
            if ident is None:
                # The holder released between our open and stat; the
                # next O_CREAT | O_EXCL attempt races fairly for it.
                lock_seen = None
                continue
            if lock_seen is None or lock_seen[0] != ident:
                lock_seen = (ident, now)
            elif now - lock_seen[1] >= self._stale_after:
                fd, token_seen = self._take_over(ident, token, token_seen, now)
                if fd is not None:
                    return fd
            time.sleep(self._SPIN_INTERVAL)

    def _take_over(
        self,
        stale_ident: _Identity,
        token: Path,
        token_seen: tuple[_Identity, float] | None,
        now: float,
    ) -> tuple[int | None, tuple[_Identity, float] | None]:
        """Attempt one atomic takeover of the lock judged *stale_ident*.

        Returns ``(fd, token_seen)``: the held lock fd on success, else
        ``None`` plus the updated observation of a competitor's token
        (a token is itself broken by the observed-age rule, so a
        claimant that dies mid-takeover cannot wedge the lock forever).
        """
        try:
            tfd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
        except FileExistsError:
            t_ident = self._identity(token)
            if t_ident is None:
                return None, None  # claimant just finished or abandoned
            if token_seen is None or token_seen[0] != t_ident:
                return None, (t_ident, now)
            if now - token_seen[1] >= self._stale_after:
                try:
                    os.unlink(token)
                except OSError:
                    pass
                return None, None
            return None, token_seen
        except OSError:
            return None, token_seen
        # Exactly one waiter holds the token.  Re-validate before the
        # swap: steal only the very lock we watched go stale — if the
        # holder (or another winner) replaced it meanwhile, back off.
        if self._identity(self.path) == stale_ident:
            try:
                os.replace(token, self.path)
            except OSError:
                pass
            else:
                return tfd, None
        os.close(tfd)
        try:
            os.unlink(token)
        except OSError:
            pass
        return None, None

    def release(self) -> None:
        fd, self._fd = self._fd, None
        try:
            if fd is not None:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                else:  # pragma: no cover - non-POSIX fallback
                    self._unlink_if_owner(fd)
                os.close(fd)
        finally:
            self._thread_lock.release()

    def _unlink_if_owner(self, fd: int) -> None:
        # Remove the lock file only if it is still *our* lock: a waiter
        # that judged us stale and took over owns the path now, and
        # unlinking its file here would hand the lock to a third party.
        try:
            if os.fstat(fd).st_ino == os.stat(self.path).st_ino:
                os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
