"""Persistent content-addressed result store (the durable cache tier).

Memoizes anything that is a pure function of digested inputs: trial
aggregates of the experiment engine (warm re-runs, resumed sweeps,
delta-series sweeps) and computed deadline assignments of the online
service (``repro serve --cache-dir`` survives restarts warm).  See
:mod:`repro.store.trialstore` for the on-disk format and concurrency
story.
"""

from .filelock import FileLock
from .trialstore import CODE_SALT, FORMAT, StoreStats, TrialStore, store_key

__all__ = [
    "TrialStore",
    "StoreStats",
    "store_key",
    "FileLock",
    "CODE_SALT",
    "FORMAT",
]
