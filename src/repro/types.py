"""Shared type aliases and small value types.

The paper models system time as discrete time units indexed by the
naturals (§3.1) but notes this is without loss of generality; the slicing
metrics produce fractional local deadlines (e.g. ``d_i = c_i (1 + R)``),
so the library represents time as non-negative floats throughout and
treats the paper's integral units as a special case.
"""

from __future__ import annotations

from typing import NewType

__all__ = [
    "Time",
    "TaskId",
    "ProcessorId",
    "ProcessorClassId",
    "EPSILON",
    "time_almost_equal",
    "time_leq",
    "time_geq",
]

#: A point in (or span of) simulated time, in time units.
Time = float

#: Identifier of a task within a :class:`~repro.graph.taskgraph.TaskGraph`.
TaskId = NewType("TaskId", str)

#: Identifier of a processor within a :class:`~repro.system.platform.Platform`.
ProcessorId = NewType("ProcessorId", str)

#: Identifier of a processor class (hardware configuration), §3.1.
ProcessorClassId = NewType("ProcessorClassId", str)

#: Tolerance used when comparing computed times for equality.  Slicing
#: arithmetic is a handful of additions/multiplications per task, so
#: accumulated floating-point error stays far below this bound for any
#: realistic task-set size.
EPSILON: float = 1e-9


def time_almost_equal(a: Time, b: Time, *, eps: float = EPSILON) -> bool:
    """Return ``True`` when two times agree within *eps* (scaled)."""
    scale = max(1.0, abs(a), abs(b))
    return abs(a - b) <= eps * scale


def time_leq(a: Time, b: Time, *, eps: float = EPSILON) -> bool:
    """Tolerant ``a <= b`` for computed times."""
    scale = max(1.0, abs(a), abs(b))
    return a <= b + eps * scale


def time_geq(a: Time, b: Time, *, eps: float = EPSILON) -> bool:
    """Tolerant ``a >= b`` for computed times."""
    return time_leq(b, a, eps=eps)
