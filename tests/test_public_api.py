"""Hygiene checks on the public API surface."""

import importlib
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.graph",
    "repro.system",
    "repro.core",
    "repro.sched",
    "repro.assign",
    "repro.periodic",
    "repro.workload",
    "repro.resources",
    "repro.online",
    "repro.experiments",
    "repro.analysis",
    "repro.viz",
    "repro.cli",
]


class TestExports:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), module_name
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_no_duplicate_exports(self, module_name):
        module = importlib.import_module(module_name)
        names = list(module.__all__)
        assert len(names) == len(set(names)), module_name

    def test_every_submodule_imports(self):
        # every module in the package tree imports cleanly
        for info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            importlib.import_module(info.name)

    def test_version_marker(self):
        assert repro.__version__
        major = int(repro.__version__.split(".")[0])
        assert major >= 1


class TestDocstrings:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_modules_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, module_name

    def test_public_callables_documented(self):
        # every top-level public symbol carries a docstring
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, name
