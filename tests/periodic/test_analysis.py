"""Unit tests for periodic utilization analysis."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graph import GraphBuilder
from repro.periodic import (
    per_rate_breakdown,
    task_set_utilization,
    utilization_bound_satisfied,
)
from repro.system import identical_platform
from repro.workload import engine_control_graph


def periodic_pair():
    return (
        GraphBuilder()
        .task("a", 10, period=40.0)   # U = 0.25
        .task("b", 30, period=60.0)   # U = 0.5
        .build()
    )


class TestUtilization:
    def test_sum_of_rates(self):
        assert task_set_utilization(periodic_pair()) == pytest.approx(0.75)

    def test_estimator_changes_value(self):
        g = (
            GraphBuilder()
            .task("a", {"x": 10.0, "y": 30.0}, period=40.0)
            .build()
        )
        avg = task_set_utilization(g)
        mx = task_set_utilization(g, estimator="WCET-MAX")
        assert avg == pytest.approx(0.5)
        assert mx == pytest.approx(0.75)

    def test_aperiodic_rejected(self):
        g = GraphBuilder().task("a", 10).build()
        with pytest.raises(ValidationError):
            task_set_utilization(g)


class TestBound:
    def test_fits_one_processor(self):
        assert utilization_bound_satisfied(
            periodic_pair(), identical_platform(1)
        )

    def test_overload_detected(self):
        g = (
            GraphBuilder()
            .task("a", 30, period=40.0)
            .task("b", 30, period=40.0)
            .build()
        )
        assert not utilization_bound_satisfied(g, identical_platform(1))
        assert utilization_bound_satisfied(g, identical_platform(2))

    def test_engine_control_fits_two_processors(self):
        from repro.system import Platform, Processor, ProcessorClass

        g = engine_control_graph(rng=np.random.default_rng(0))
        platform = Platform(
            [Processor("ecu1", "ecu"), Processor("dsp1", "dsp")],
            [ProcessorClass("ecu"), ProcessorClass("dsp")],
        )
        assert utilization_bound_satisfied(g, platform)


class TestBreakdown:
    def test_groups_by_period(self):
        g = engine_control_graph(rng=np.random.default_rng(0))
        breakdown = per_rate_breakdown(g)
        assert set(breakdown) == {20.0, 40.0, 80.0}
        assert task_set_utilization(g) == pytest.approx(
            sum(breakdown.values())
        )

    def test_sorted_by_period(self):
        g = engine_control_graph(rng=np.random.default_rng(0))
        assert list(per_rate_breakdown(g)) == [20.0, 40.0, 80.0]
