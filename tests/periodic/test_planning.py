"""Unit tests for planning-cycle analysis (§3.3)."""

import pytest

from repro.errors import ValidationError
from repro.graph import GraphBuilder, Task
from repro.periodic import (
    expand_periodic_graph,
    hyperperiod,
    invocations_within,
    planning_cycle,
)


def ptask(tid, period, phasing=0.0, d=None):
    return Task(
        id=tid,
        wcet={"e": 1.0},
        phasing=phasing,
        period=period,
        relative_deadline=d,
    )


class TestHyperperiod:
    def test_integers(self):
        assert hyperperiod([4, 6]) == 12.0
        assert hyperperiod([5]) == 5.0
        assert hyperperiod([2, 3, 5]) == 30.0

    def test_rationals(self):
        assert hyperperiod([2.5, 1.5]) == pytest.approx(7.5)
        assert hyperperiod([0.2, 0.5]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            hyperperiod([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValidationError):
            hyperperiod([0.0])


class TestPlanningCycle:
    def test_identical_arrivals_is_one_hyperperiod(self):
        pc = planning_cycle([ptask("a", 4), ptask("b", 6)])
        assert pc.hyperperiod == 12.0
        assert pc.length == 12.0
        assert pc.interval == (0.0, 12.0)

    def test_staggered_arrivals_use_a_plus_2l(self):
        pc = planning_cycle([ptask("a", 4), ptask("b", 6, phasing=3.0)])
        assert pc.length == 3.0 + 2 * 12.0
        assert pc.max_arrival == 3.0

    def test_requires_normalized_phasings(self):
        with pytest.raises(ValidationError):
            planning_cycle([ptask("a", 4, phasing=1.0)])

    def test_rejects_aperiodic_tasks(self):
        with pytest.raises(ValidationError):
            planning_cycle([Task(id="x", wcet={"e": 1.0})])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            planning_cycle([])


class TestInvocations:
    def test_periodic_expansion(self):
        t = ptask("a", 10, phasing=2.0, d=5.0)
        inv = invocations_within(t, 35.0)
        assert [i.arrival for i in inv] == [2.0, 12.0, 22.0, 32.0]
        assert inv[0].absolute_deadline == 7.0
        assert inv[2].k == 3
        assert inv[1].uid == "a#2"

    def test_aperiodic_single(self):
        t = Task(id="x", wcet={"e": 1.0}, phasing=3.0)
        inv = invocations_within(t, 100.0)
        assert len(inv) == 1
        assert inv[0].absolute_deadline is None

    def test_empty_horizon(self):
        assert invocations_within(ptask("a", 10), 0.0) == []


class TestExpandPeriodicGraph:
    def graph(self):
        return (
            GraphBuilder()
            .task("s", 10, period=100.0)
            .task("t", 10, period=100.0)
            .edge("s", "t", message=2)
            .e2e("s", "t", 80)
            .build()
        )

    def test_unrolls_copies(self):
        g = expand_periodic_graph(self.graph(), 250.0)
        assert g.n_tasks == 6  # 3 invocations x 2 tasks
        assert g.task("s#2").phasing == 100.0
        assert g.has_edge("s#3", "t#3")
        assert g.message_size("s#1", "t#1") == 2.0
        assert g.e2e_deadline("s#2", "t#2") == 80.0

    def test_copies_are_aperiodic(self):
        g = expand_periodic_graph(self.graph(), 150.0)
        assert all(t.period is None for t in g.tasks())

    def test_rejects_multi_rate(self):
        g = (
            GraphBuilder()
            .task("a", 1, period=10.0)
            .task("b", 1, period=20.0)
            .edge("a", "b")
            .build()
        )
        with pytest.raises(ValidationError):
            expand_periodic_graph(g, 40.0)

    def test_expanded_graph_schedules_end_to_end(self, uni2):
        from repro.core import distribute_deadlines
        from repro.sched import schedule_edf, validate_schedule

        g = expand_periodic_graph(self.graph(), 300.0)
        a = distribute_deadlines(g, uni2, "ADAPT-L")
        s = schedule_edf(g, uni2, a)
        assert s.feasible
        assert validate_schedule(s, g, uni2, a) == []
