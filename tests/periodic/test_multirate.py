"""Unit tests for multi-rate planning-cycle expansion."""

import pytest

from repro.errors import ValidationError
from repro.graph import GraphBuilder
from repro.periodic import expand_multirate_graph


def multirate():
    """Two independent chains at periods 50 and 100."""
    return (
        GraphBuilder()
        .task("f1", 5, period=50.0).task("f2", 5, period=50.0)
        .task("s1", 10, period=100.0).task("s2", 10, period=100.0)
        .edge("f1", "f2", message=1)
        .edge("s1", "s2", message=1)
        .e2e("f1", "f2", 40)
        .e2e("s1", "s2", 80)
        .build()
    )


class TestExpandMultirate:
    def test_defaults_to_hyperperiod(self):
        g = expand_multirate_graph(multirate())
        # hyperperiod 100: fast chain twice, slow chain once
        assert "f1#1" in g and "f1#2" in g
        assert "s1#1" in g and "s1#2" not in g
        assert g.n_tasks == 2 * 2 + 2

    def test_phasings_shifted_per_rate(self):
        g = expand_multirate_graph(multirate())
        assert g.task("f1#2").phasing == 50.0
        assert g.task("s1#1").phasing == 0.0

    def test_explicit_horizon(self):
        g = expand_multirate_graph(multirate(), horizon=200.0)
        assert "f1#4" in g and "s1#2" in g
        assert g.n_tasks == 2 * 4 + 2 * 2

    def test_deadlines_replicated(self):
        g = expand_multirate_graph(multirate())
        assert g.e2e_deadline("f1#2", "f2#2") == 40.0

    def test_cross_rate_edges_rejected(self):
        g = (
            GraphBuilder()
            .task("a", 1, period=10.0).task("b", 1, period=20.0)
            .edge("a", "b")
            .build()
        )
        with pytest.raises(ValidationError):
            expand_multirate_graph(g)

    def test_aperiodic_tasks_rejected(self):
        g = GraphBuilder().task("a", 1).build()
        with pytest.raises(ValidationError):
            expand_multirate_graph(g)

    def test_expanded_set_schedules(self, uni2):
        from repro.core import distribute_deadlines
        from repro.sched import schedule_edf, validate_schedule

        g = expand_multirate_graph(multirate())
        a = distribute_deadlines(g, uni2, "ADAPT-L")
        s = schedule_edf(g, uni2, a)
        assert s.feasible
        assert validate_schedule(s, g, uni2, a) == []
