"""Unit tests for release-jitter analysis (implication I2)."""

import pytest

from repro.core import distribute_deadlines
from repro.graph import GraphBuilder, chain_graph
from repro.periodic import precedence_release_bounds, start_jitter
from repro.sched import schedule_edf


class TestStartJitter:
    def test_uncontended_chain_has_zero_jitter(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        s = schedule_edf(chain3, uni2, a)
        report = start_jitter(s, a)
        assert report.maximum == pytest.approx(0.0)
        assert report.mean == pytest.approx(0.0)

    def test_contention_shows_up_as_start_drift(self, uni2):
        # Three parallel tasks on two processors: one must wait.
        g = (
            GraphBuilder()
            .task("x", 10).task("y", 10).task("z", 10)
            .build()
        )
        from repro.core import DeadlineAssignment, TaskWindow

        a = DeadlineAssignment(
            windows={
                t: TaskWindow(0.0, 40.0, 40.0) for t in ("x", "y", "z")
            }
        )
        s = schedule_edf(g, uni2, a)
        report = start_jitter(s, a)
        assert report.maximum == pytest.approx(10.0)

    def test_empty_report(self):
        from repro.core import DeadlineAssignment
        from repro.sched import Schedule

        report = start_jitter(Schedule(), DeadlineAssignment(windows={}))
        assert report.maximum == 0.0 and report.mean == 0.0


class TestPrecedenceReleaseBounds:
    def test_inputs_have_zero_spread(self, hetero_graph):
        report = precedence_release_bounds(hetero_graph)
        assert report.per_task["a"] == 0.0

    def test_spread_accumulates_down_the_chain(self, hetero_graph):
        report = precedence_release_bounds(hetero_graph)
        # b's release varies by a's WCET spread (8 vs 12)
        assert report.per_task["b"] == pytest.approx(4.0)
        # c adds b's spread (16 vs 24)
        assert report.per_task["c"] == pytest.approx(4.0 + 8.0)

    def test_homogeneous_chain_has_no_jitter_potential(self):
        g = chain_graph([10, 10, 10])
        report = precedence_release_bounds(g)
        assert report.maximum == 0.0
