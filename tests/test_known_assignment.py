"""Unit tests for comm-aware known-assignment distribution ([5]/§4.3)."""

import pytest

from repro.assign import (
    FixedAssignmentEdfScheduler,
    TaskAssignment,
    augment_with_messages,
    cluster_assignment,
    distribute_known_assignment,
    exact_estimates,
)
from repro.core import distribute_deadlines
from repro.graph import GraphBuilder
from repro.rng import make_rng
from repro.sched import validate_schedule
from repro.system import identical_platform
from repro.workload import WorkloadParams, generate_workload


@pytest.fixture
def split_chain():
    """a -> b with a 10-item message, forced onto different processors."""
    g = (
        GraphBuilder()
        .task("a", 10).task("b", 10)
        .edge("a", "b", message=10)
        .e2e("a", "b", 60)
        .build()
    )
    assignment = TaskAssignment({"a": "p1", "b": "p2"}, 2, 0.0)
    return g, identical_platform(2), assignment


class TestAugmentation:
    def test_cross_processor_edge_gets_message_task(self, split_chain):
        g, p, assign = split_chain
        aug, messages = augment_with_messages(g, p, assign)
        assert len(messages) == 1
        mid = next(iter(messages))
        assert messages[mid] == 10.0  # 10 items x 1 unit
        assert aug.has_edge("a", mid) and aug.has_edge(mid, "b")
        assert not aug.has_edge("a", "b")

    def test_same_processor_edge_untouched(self, split_chain):
        g, p, _ = split_chain
        colocated = TaskAssignment({"a": "p1", "b": "p1"}, 1, 10.0)
        aug, messages = augment_with_messages(g, p, colocated)
        assert messages == {}
        assert aug.has_edge("a", "b")
        assert aug.n_tasks == 2

    def test_e2e_deadlines_preserved(self, split_chain):
        g, p, assign = split_chain
        aug, _ = augment_with_messages(g, p, assign)
        assert aug.e2e_deadline("a", "b") == 60.0


class TestDistribution:
    def test_message_gap_reserved_between_windows(self, split_chain):
        g, p, assign = split_chain
        a = distribute_known_assignment(g, p, assign, "NORM")
        # comm-aware: b's arrival leaves at least the 10-unit bus cost
        # after a's deadline
        assert a.arrival("b") >= a.absolute_deadline("a") + 10.0 - 1e-9
        # real tasks only in the result
        assert set(a.windows) == {"a", "b"}
        assert a.metric_name == "NORM/comm-aware"

    def test_comm_blind_leaves_no_gap(self, split_chain):
        g, p, assign = split_chain
        est = exact_estimates(g, p, assign)
        blind = distribute_deadlines(g, p, "NORM", estimates=est)
        assert blind.arrival("b") == pytest.approx(
            blind.absolute_deadline("a")
        )

    def test_comm_aware_schedule_validates(self, split_chain):
        g, p, assign = split_chain
        a = distribute_known_assignment(g, p, assign, "NORM")
        s = FixedAssignmentEdfScheduler(assign).schedule(g, p, a)
        assert s.feasible
        assert validate_schedule(s, g, p, a) == []

    def test_section_4_3_claim_blind_never_worse_on_chain(self):
        """§4.3's finding, verified exactly on a three-stage chain.

        ``a → b → c`` with a 10-unit bus cost on each hop, every task
        on its own processor.  Comm-blind windows let the scheduler's
        laxity absorb the delays; comm-aware windows reserve the gaps
        but surrender that laxity.  Sweeping the E-T-E deadline through
        the feasibility threshold (joint minimum D = 50), the blind
        distribution is feasible wherever the aware one is.
        """
        p = identical_platform(3)
        assign = TaskAssignment({"a": "p1", "b": "p2", "c": "p3"}, 3, 0.0)
        for deadline, expect_feasible in (
            (44.0, False),  # below exec+comm: impossible for anyone
            (50.0, True),   # the joint threshold
            (60.0, True),
        ):
            g = (
                GraphBuilder()
                .task("a", 10).task("b", 10).task("c", 10)
                .edge("a", "b", message=10).edge("b", "c", message=10)
                .e2e("a", "c", deadline)
                .build()
            )
            aware = distribute_known_assignment(g, p, assign, "NORM")
            s_aware = FixedAssignmentEdfScheduler(assign).schedule(
                g, p, aware
            )
            est = exact_estimates(g, p, assign)
            blind = distribute_deadlines(g, p, "NORM", estimates=est)
            s_blind = FixedAssignmentEdfScheduler(assign).schedule(
                g, p, blind
            )
            assert s_aware.feasible == expect_feasible, deadline
            # the §4.3 claim: blind is feasible whenever aware is
            if s_aware.feasible:
                assert s_blind.feasible, deadline


class TestOnRandomWorkloads:
    def test_pipeline_runs_and_validates(self):
        params = WorkloadParams(
            m=3, n_tasks_range=(15, 20), depth_range=(4, 6), olr=1.0
        )
        for seed in range(5):
            wl = generate_workload(params, make_rng(seed))
            fixed = cluster_assignment(wl.graph, wl.platform)
            a = distribute_known_assignment(
                wl.graph, wl.platform, fixed, "NORM"
            )
            assert set(a.windows) == set(wl.graph.task_ids())
            s = FixedAssignmentEdfScheduler(
                fixed, continue_on_miss=True
            ).schedule(wl.graph, wl.platform, a)
            problems = validate_schedule(
                s, wl.graph, wl.platform, a, check_deadlines=False
            )
            assert problems == [], (seed, problems)
