"""Unit tests for the repro-figures CLI."""

import json

import pytest

from repro.cli import build_parser, build_serve_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.figures == ["fig2"]
        assert args.trials == 1024
        assert args.seed == 2026

    def test_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["--all", "--trials", "16", "--jobs", "2", "--out", str(tmp_path)]
        )
        assert args.all and args.trials == 16 and args.jobs == 2


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "abl-ccr" in out

    def test_no_args_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_figure_reports_error(self, capsys):
        assert main(["fig99", "--trials", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_jobs_is_clean_error(self, capsys):
        assert main(["abl-kl", "--trials", "1", "--jobs", "0"]) == 1
        assert "jobs must be at least 1" in capsys.readouterr().err

    def test_tiny_run_writes_outputs(self, tmp_path, capsys):
        code = main(
            [
                "abl-kl",
                "--trials", "2",
                "--seed", "3",
                "--jobs", "1",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ADAPT-L" in out
        doc = json.loads((tmp_path / "abl-kl.json").read_text())
        assert doc["trials_per_cell"] == 2
        assert (tmp_path / "abl-kl.csv").exists()
        assert (tmp_path / "abl-kl.md").read_text().startswith("###")


class TestSubcommands:
    def test_explicit_figures_subcommand_is_back_compat(self, capsys):
        assert main(["figures", "--list"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_figures_subcommand_runs_experiments(self, tmp_path, capsys):
        code = main(
            ["figures", "abl-kl", "--trials", "1", "--jobs", "1",
             "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "abl-kl.json").exists()

    def test_serve_parser_defaults(self):
        import os

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8077
        assert args.cache_size == 1024
        assert args.batch_size == 8
        # --workers now counts processes: min(cpu_count, 4), so the
        # single-CPU CI host defaults to the in-process path.
        assert args.workers == min(os.cpu_count() or 1, 4)
        assert args.threads == 4

    def test_serve_parser_flags(self):
        args = build_serve_parser().parse_args(
            ["--port", "0", "--cache-size", "16", "--batch-wait", "0.01"]
        )
        assert args.port == 0 and args.cache_size == 16
        assert args.batch_wait == 0.01

    def test_serve_rejects_bad_cache_size(self, capsys):
        assert main(["serve", "--cache-size", "0"]) == 2
        assert "cache maxsize" in capsys.readouterr().err
