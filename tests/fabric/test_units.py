"""Unit extraction, content addressing, and wire round-trips.

The fabric's correctness rests on units being *exactly* the paired
engine's partition (same keys, same order) and on identity being
recomputed — never trusted — when a unit document crosses a process
or network boundary.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import FabricError
from repro.experiments.runner import (
    _cell_seeds,
    cell_chunk_key,
    run_experiment,
)
from repro.fabric import (
    compute_unit,
    extract_units,
    sweep_id,
    unit_from_dict,
    unit_is_stored,
    unit_to_dict,
)
from repro.store import TrialStore

from .conftest import make_spec


class TestExtraction:
    def test_units_cover_every_cell_chunk_exactly_once(self, spec):
        units = extract_units(spec, trials=10, seed=7, chunk_size=4)
        # 2 x-values, chunks of 4/4/2 → 6 units, each carrying 2 series.
        assert len(units) == 6
        seen = set()
        for unit in units:
            assert len(unit.cells) == len(spec.series)
            assert len(unit.keys) == len(unit.cells)
            seen.update(unit.keys)
        assert len(seen) == 12  # no key shared between units

    def test_keys_match_the_engines_store_addresses(self, spec):
        units = extract_units(spec, trials=6, seed=7, chunk_size=6)
        unit = units[0]
        seeds = _cell_seeds(7, unit.x_index, 6)
        assert list(unit.seeds) == seeds
        for (si, config), key in zip(unit.cells, unit.keys):
            assert key == cell_chunk_key(config, unit.seeds)

    def test_extraction_is_deterministic(self, spec):
        a = extract_units(spec, trials=8, seed=3, chunk_size=4)
        b = extract_units(spec, trials=8, seed=3, chunk_size=4)
        assert [u.unit_id for u in a] == [u.unit_id for u in b]

    def test_sweep_id_covers_shape(self, spec):
        units = extract_units(spec, trials=8, seed=3, chunk_size=4)
        base = sweep_id(spec.name, units, trials=8, seed=3, chunk_size=4)
        assert base != sweep_id(
            spec.name, units, trials=8, seed=3, chunk_size=8
        )
        assert base != sweep_id("other", units, trials=8, seed=3, chunk_size=4)

    def test_bad_shape_raises(self, spec):
        with pytest.raises(FabricError):
            extract_units(spec, trials=0, seed=1, chunk_size=4)
        with pytest.raises(FabricError):
            extract_units(spec, trials=4, seed=1, chunk_size=0)


class TestWireFormat:
    def test_round_trip_preserves_identity(self, spec):
        unit = extract_units(spec, trials=4, seed=11, chunk_size=4)[0]
        doc = json.loads(json.dumps(unit_to_dict(unit)))  # through JSON
        back = unit_from_dict(doc)
        assert back == unit

    def test_tampered_payload_is_rejected(self, spec):
        unit = extract_units(spec, trials=4, seed=11, chunk_size=4)[0]
        doc = unit_to_dict(unit)
        doc["seeds"][0] += 1  # payload no longer matches the claimed id
        with pytest.raises(FabricError, match="id mismatch"):
            unit_from_dict(doc)

    def test_malformed_document_is_rejected(self):
        with pytest.raises(FabricError, match="malformed"):
            unit_from_dict({"unit": "x", "cells": [[0, {}]], "seeds": []})


class TestCompute:
    def test_compute_unit_matches_single_process_records(
        self, spec, tmp_path
    ):
        # Records a worker computes are the records a cached
        # single-process run would have written under the same keys.
        units = extract_units(spec, trials=6, seed=5, chunk_size=3)
        store = TrialStore(tmp_path / "s")
        run_experiment(
            spec, trials=6, seed=5, jobs=1, chunk_size=3, cache=store
        )
        for unit in units:
            assert unit_is_stored(store, unit)
            for key, value in compute_unit(unit):
                assert json.dumps(store.get(key), sort_keys=True) == (
                    json.dumps(value, sort_keys=True)
                )
        store.close()
