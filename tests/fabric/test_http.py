"""The fabric's HTTP face: endpoint validation and remote workers.

Endpoint tests drive ``FabricEndpoint.handle`` directly (no sockets);
the integration tests mount it on the real service front end and run
``HTTPTransport`` workers against it, including the full
remote-workers-only sweep that must stay bit-identical.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import FabricError
from repro.experiments.runner import run_experiment
from repro.fabric import (
    FabricCoordinator,
    HTTPTransport,
    compute_unit,
    worker_loop,
)
from repro.service import DeadlineAssignmentService, create_server
from repro.service.metrics import ServiceMetrics

TRIALS, SEED, CHUNK = 8, 41, 4


@pytest.fixture
def coordinator(spec, tmp_path):
    c = FabricCoordinator(
        spec,
        trials=TRIALS,
        seed=SEED,
        chunk_size=CHUNK,
        store=tmp_path / "s",
        lease_ttl=5.0,
    )
    yield c
    c.close()


class TestEndpoint:
    def test_lease_complete_round_trip(self, coordinator):
        endpoint = coordinator.endpoint()
        status, reply = endpoint.handle(
            "POST", "/fabric/lease", {"worker": "w"}
        )
        assert status == 200 and reply["unit"] is not None
        unit_doc = reply["unit"]
        from repro.fabric import unit_from_dict

        unit = unit_from_dict(unit_doc)
        records = compute_unit(unit)
        status, reply = endpoint.handle(
            "POST",
            "/fabric/complete",
            {
                "worker": "w",
                "unit": unit.unit_id,
                "records": [[k, v] for k, v in records],
            },
        )
        assert status == 200 and reply["done"] is True
        assert reply["appended"] == len(records)
        # Idempotent: a second completion transitions nothing.
        status, reply = endpoint.handle(
            "POST",
            "/fabric/complete",
            {"worker": "other", "unit": unit.unit_id, "records": []},
        )
        assert reply["done"] is False

    def test_complete_rejects_foreign_keys(self, coordinator):
        endpoint = coordinator.endpoint()
        a, b = coordinator.units[0], coordinator.units[1]
        with pytest.raises(FabricError, match="does not belong"):
            endpoint.handle(
                "POST",
                "/fabric/complete",
                {
                    "worker": "w",
                    "unit": a.unit_id,
                    "records": [[b.keys[0], {"x": 1}]],
                },
            )

    def test_complete_rejects_unknown_unit_and_bad_records(
        self, coordinator
    ):
        endpoint = coordinator.endpoint()
        with pytest.raises(FabricError, match="unknown unit"):
            endpoint.handle(
                "POST",
                "/fabric/complete",
                {"worker": "w", "unit": "nope", "records": []},
            )
        unit = coordinator.units[0]
        with pytest.raises(FabricError, match="records"):
            endpoint.handle(
                "POST",
                "/fabric/complete",
                {"worker": "w", "unit": unit.unit_id, "records": "x"},
            )

    def test_status_heartbeat_release_and_404(self, coordinator):
        endpoint = coordinator.endpoint()
        status, body = endpoint.handle("GET", "/fabric/status", None)
        assert status == 200 and body["total"] == len(coordinator.units)
        endpoint.handle("POST", "/fabric/lease", {"worker": "w"})
        status, body = endpoint.handle(
            "POST", "/fabric/heartbeat", {"worker": "w"}
        )
        assert body["extended"] == 1
        status, _body = endpoint.handle(
            "POST",
            "/fabric/release",
            {"worker": "w", "unit": coordinator.units[0].unit_id},
        )
        assert status == 200
        status, _body = endpoint.handle("GET", "/fabric/nope", None)
        assert status == 404

    def test_worker_and_ttl_validation(self, coordinator):
        endpoint = coordinator.endpoint()
        with pytest.raises(FabricError, match="worker"):
            endpoint.handle("POST", "/fabric/lease", {"worker": ""})
        with pytest.raises(FabricError, match="body"):
            endpoint.handle("POST", "/fabric/lease", [1, 2])
        with pytest.raises(FabricError, match="ttl"):
            endpoint.handle(
                "POST", "/fabric/lease", {"worker": "w", "ttl": "soon"}
            )

    def test_metrics_provider_and_counters(self, coordinator):
        metrics = ServiceMetrics()
        endpoint = coordinator.endpoint(metrics=metrics)
        endpoint.handle("POST", "/fabric/lease", {"worker": "w"})
        assert metrics.fabric_leases.value(worker="w") == 1
        text = metrics.render()
        assert 'repro_fabric_units{state="leased"} 1' in text
        assert "repro_fabric_finished 0" in text


class TestHTTPIntegration:
    @pytest.fixture
    def served(self, coordinator):
        service = DeadlineAssignmentService(cache_size=4)
        server = create_server(
            "127.0.0.1",
            0,
            service,
            fabric=coordinator.endpoint(metrics=service.metrics),
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield coordinator, f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        service.close(timeout=5.0)

    def test_remote_workers_complete_the_sweep_bit_identically(
        self, spec, served
    ):
        coordinator, url = served
        n_units = len(coordinator.units)
        done = worker_loop(
            HTTPTransport(url), "remote-1", lease_ttl=5.0, poll=0.05
        )
        assert done == n_units
        assert coordinator.queue.finished()
        merged = coordinator.merge().to_dict()
        merged.pop("elapsed_seconds")
        single = run_experiment(
            spec, trials=TRIALS, seed=SEED, jobs=1, chunk_size=CHUNK
        ).to_dict()
        single.pop("elapsed_seconds")
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            single, sort_keys=True
        )

    def test_transport_errors_map_to_fabric_error(self, served):
        _coordinator, url = served
        transport = HTTPTransport(url)
        with pytest.raises(FabricError, match="rejected"):
            transport.complete(
                "w",
                type(
                    "U", (), {"unit_id": "bogus", "keys": ()}
                )(),
                [],
            )
        cold = HTTPTransport("http://127.0.0.1:9")  # nothing listens here
        with pytest.raises(FabricError, match="cannot reach"):
            cold.lease("w", 1.0)

    def test_status_and_metrics_over_http(self, served):
        import urllib.request

        _coordinator, url = served
        with urllib.request.urlopen(f"{url}/fabric/status", timeout=5) as r:
            doc = json.loads(r.read().decode())
        assert doc["total"] == 4 and doc["finished"] is False
        with urllib.request.urlopen(f"{url}/metrics", timeout=5) as r:
            text = r.read().decode()
        assert 'repro_fabric_units{state="pending"} 4' in text

    def test_graceful_outage_after_contact_reads_as_finished(self, served):
        coordinator, url = served
        transport = HTTPTransport(url)
        assert transport.finished() is False  # establishes contact
        # Coordinator vanishes (server torn down by another path).
        transport.base_url = "http://127.0.0.1:9"
        assert transport.lease("w", 1.0) is None
        assert transport.finished() is True
