"""Journal-format tests for the work queue (v2 snapshot + JSONL log).

Pins the crash-safety clauses the journaled commit path introduced:
torn-tail healing after a SIGKILLed mid-append writer, exactly-once
replay of a record whose newline never landed, snapshot-compaction
equivalence, batched verb idempotency under duplicate / out-of-order
completes, the heartbeat no-op fast path, and the in-place v1→v2
manifest upgrade.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import FabricError
from repro.fabric import WorkQueue
from repro.fabric.queue import QUEUE_FORMAT, QUEUE_FORMAT_V1

IDS = ["u-a", "u-b", "u-c", "u-d"]


class Clock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_queue(tmp_path, clock, ids=IDS, done=(), **kwargs):
    return WorkQueue.create(
        tmp_path / "q", "sweep-1", ids, done=done, clock=clock, **kwargs
    )


def reopen(tmp_path, clock, **kwargs):
    """A fresh handle on the same queue directory (cold caches)."""
    return WorkQueue(tmp_path / "q", clock=clock, **kwargs)


class TestJournalReplay:
    def test_fresh_handle_replays_the_journal(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=10.0)
        q.complete("w", "u-a")
        snap = reopen(tmp_path, clock).snapshot()
        assert (snap.done, snap.leased, snap.pending) == (1, 0, 3)
        assert snap.completions == 1

    def test_torn_garbage_tail_is_healed_and_skipped(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=10.0)
        # A writer SIGKILLed mid-append: undecodable partial line, no
        # newline.  Its operation never happened.
        with open(q.journal_path, "ab") as fh:
            fh.write(b'{"q": 99, "op": "done", "w": "w"')
        q2 = reopen(tmp_path, clock)
        snap = q2.snapshot()
        assert (snap.leased, snap.done) == (1, 0)
        # The heal isolated the garbage; later appends start clean and
        # every record (old, healed-garbage-skipped, new) replays.
        assert q2.lease("w2", ttl=10.0) == "u-b"
        snap3 = reopen(tmp_path, clock).snapshot()
        assert (snap3.leased, snap3.pending) == (2, 2)

    def test_torn_but_decodable_tail_applies_exactly_once(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=10.0)
        # The writer died between write() and the newline hitting disk:
        # the record content is complete, only the terminator is torn.
        with open(q.journal_path, "rb+") as fh:
            data = fh.read()
            assert data.endswith(b"\n")
            fh.seek(0)
            fh.truncate()
            fh.write(data[:-1])
        q2 = reopen(tmp_path, clock)
        assert q2.snapshot().leased == 1  # applied once, not zero times
        # A second sync (and a second fresh handle) must not double-
        # apply it: the lease counter stays at 1.
        q2.heartbeat("nobody", ttl=1.0)
        assert reopen(tmp_path, clock).snapshot().leases == 1

    def test_concurrent_handles_converge(self, tmp_path):
        clock = Clock()
        q1 = make_queue(tmp_path, clock)
        q2 = reopen(tmp_path, clock)
        assert q1.lease("w1", ttl=10.0) == "u-a"
        assert q2.lease("w2", ttl=10.0) == "u-b"  # sees w1's lease
        q1.complete("w1", "u-a")
        snap = q2.snapshot()
        assert (snap.done, snap.leased, snap.pending) == (1, 1, 2)


class TestCompaction:
    def test_compacted_state_equals_journaled_state(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=10.0)
        q.lease("w", ttl=10.0)
        q.complete("w", "u-a")
        before = q.snapshot()
        q.compact()
        assert (tmp_path / "q" / "JOURNAL.jsonl").stat().st_size == 0
        assert reopen(tmp_path, clock).snapshot() == before

    def test_threshold_triggers_compaction(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock, compact_bytes=1)
        q.lease("w", ttl=10.0)  # every append immediately compacts
        assert (tmp_path / "q" / "JOURNAL.jsonl").stat().st_size == 0
        doc = json.loads((tmp_path / "q" / "MANIFEST.json").read_text())
        assert doc["units"]["u-a"]["state"] == "leased"
        assert doc["seq"] == 1

    def test_other_handle_detects_compaction(self, tmp_path):
        clock = Clock()
        q1 = make_queue(tmp_path, clock)
        q2 = reopen(tmp_path, clock)
        assert q2.snapshot().pending == 4  # warm q2's cache first
        q1.lease("w", ttl=10.0)
        q1.complete("w", "u-a")
        q1.compact()  # snapshot replaced, journal truncated
        snap = q2.snapshot()
        assert (snap.done, snap.pending) == (1, 3)


class TestBatchedVerbs:
    def test_lease_batch_takes_pending_then_steals(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        assert q.lease_batch("w1", 3, ttl=5.0) == ["u-a", "u-b", "u-c"]
        clock.now += 10.0  # w1's leases expire
        got = q.lease_batch("w2", 10, ttl=5.0)
        assert got == ["u-d", "u-a", "u-b", "u-c"]  # pending first
        snap = q.snapshot()
        assert snap.reissues == 3 and snap.leased == 4
        assert snap.leased_by == {"w2": 4}

    def test_complete_batch_is_idempotent(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease_batch("w", 4, ttl=10.0)
        assert q.complete_batch("w", ["u-a", "u-b"]) == 2
        # Duplicate and overlapping completes transition nothing new.
        assert q.complete_batch("other", ["u-b", "u-a"]) == 0
        assert q.complete_batch("w", ["u-b", "u-c"]) == 1
        assert q.snapshot().completions == 3

    def test_out_of_order_completes_commute(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease_batch("w", 4, ttl=10.0)
        # Completion order need not match lease order, and any worker
        # (a thief finishing a re-issued unit) may report it.
        q.complete_batch("thief", ["u-d", "u-b"])
        q.complete_batch("w", ["u-c", "u-a", "u-d"])
        snap = q.snapshot()
        assert snap.finished and snap.completions == 4

    def test_unknown_unit_in_batch_rejects_whole_batch(self, tmp_path):
        q = make_queue(tmp_path, Clock())
        q.lease_batch("w", 2, ttl=10.0)
        with pytest.raises(FabricError, match="unknown unit"):
            q.complete_batch("w", ["u-a", "nope"])
        assert q.snapshot().completions == 0  # atomic: nothing landed

    def test_empty_lease_writes_nothing(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease_batch("w", 4, ttl=100.0)
        journal = tmp_path / "q" / "JOURNAL.jsonl"
        size = journal.stat().st_size
        assert q.lease_batch("w2", 4, ttl=100.0) == []
        assert journal.stat().st_size == size


class TestHeartbeatNoop:
    def test_leaseless_heartbeat_touches_no_disk(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=10.0)
        journal = tmp_path / "q" / "JOURNAL.jsonl"
        manifest = tmp_path / "q" / "MANIFEST.json"
        j_before = journal.stat()
        m_before = manifest.stat()
        assert q.heartbeat("idle-worker", ttl=10.0) == 0
        j_after = journal.stat()
        m_after = manifest.stat()
        assert (j_before.st_size, j_before.st_mtime_ns) == (
            j_after.st_size,
            j_after.st_mtime_ns,
        )
        assert (m_before.st_size, m_before.st_mtime_ns) == (
            m_after.st_size,
            m_after.st_mtime_ns,
        )

    def test_holding_heartbeat_still_commits(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=5.0)
        journal = tmp_path / "q" / "JOURNAL.jsonl"
        size = journal.stat().st_size
        assert q.heartbeat("w", ttl=5.0) == 1
        assert journal.stat().st_size > size


class TestV1Upgrade:
    def _write_v1(self, tmp_path, units):
        root = tmp_path / "q"
        root.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": QUEUE_FORMAT_V1,
            "sweep": "sweep-1",
            "units": units,
            "leases": 3,
            "completions": 1,
            "reissues": 1,
            "workers": {"old-worker": 900.0},
        }
        (root / "MANIFEST.json").write_text(json.dumps(doc))
        return root

    def test_v1_manifest_upgrades_in_place_and_resumes(self, tmp_path):
        self._write_v1(
            tmp_path,
            {
                "u-a": {
                    "state": "done",
                    "worker": None,
                    "expires": 0.0,
                    "attempts": 2,
                },
                "u-b": {
                    "state": "pending",
                    "worker": None,
                    "expires": 0.0,
                    "attempts": 1,
                },
                "u-c": {
                    "state": "pending",
                    "worker": None,
                    "expires": 0.0,
                    "attempts": 0,
                },
                "u-d": {
                    "state": "pending",
                    "worker": None,
                    "expires": 0.0,
                    "attempts": 0,
                },
            },
        )
        clock = Clock()
        q = make_queue(tmp_path, clock)  # resume over the v1 manifest
        snap = q.snapshot()
        assert (snap.done, snap.pending) == (1, 3)  # done carried over
        assert snap.completions == 1 and snap.reissues == 1
        doc = json.loads((tmp_path / "q" / "MANIFEST.json").read_text())
        assert doc["format"] == QUEUE_FORMAT
        assert q.lease("w", ttl=10.0) == "u-b"  # not the done unit

    def test_v1_leased_units_expire_and_are_stolen(self, tmp_path):
        self._write_v1(
            tmp_path,
            {
                "u-a": {
                    "state": "leased",
                    "worker": "dead",
                    "expires": 950.0,
                    "attempts": 1,
                },
            },
        )
        clock = Clock()  # now=1000 > expires=950
        q = WorkQueue.create(
            tmp_path / "q", "sweep-1", ["u-a"], clock=clock
        )
        assert q.lease("thief", ttl=10.0) == "u-a"
        assert q.snapshot().reissues == 2  # v1 carried 1, the steal adds 1

    def test_v1_foreign_sweep_still_refused(self, tmp_path):
        self._write_v1(tmp_path, {})
        with pytest.raises(FabricError, match="belongs to sweep"):
            WorkQueue.create(tmp_path / "q", "other-sweep", [], clock=Clock())
