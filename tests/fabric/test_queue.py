"""Unit tests for the durable work queue's lease state machine.

Each test pins one clause of the pending → leased → done machine with
an injected clock: FIFO leasing, heartbeat extension, expiry-based
stealing, idempotent completion, clean release, and resume semantics
(same sweep id keeps done units; different id or unit set refuses).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import FabricError
from repro.fabric import QueueSnapshot, WorkQueue

IDS = ["u-a", "u-b", "u-c"]


class Clock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_queue(tmp_path, clock, ids=IDS, done=()):
    return WorkQueue.create(
        tmp_path / "q", "sweep-1", ids, done=done, clock=clock
    )


class TestLease:
    def test_fifo_then_none(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        assert q.lease("w1", ttl=10.0) == "u-a"
        assert q.lease("w1", ttl=10.0) == "u-b"
        assert q.lease("w2", ttl=10.0) == "u-c"
        assert q.lease("w2", ttl=10.0) is None  # all leased, none expired
        assert not q.finished()

    def test_expired_lease_is_stolen_oldest_first(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("dead", ttl=5.0)   # u-a expires at 1005
        clock.now += 2.0
        q.lease("dying", ttl=5.0)  # u-b expires at 1007
        q.lease("w", ttl=100.0)    # u-c healthy
        clock.now = 1008.0         # both short leases expired
        assert q.lease("thief", ttl=100.0) == "u-a"  # oldest expiry first
        assert q.lease("thief", ttl=100.0) == "u-b"
        assert q.lease("thief", ttl=100.0) is None
        snap = q.snapshot()
        assert snap.reissues == 2
        assert snap.leases == 5

    def test_heartbeat_extends_every_lease_of_the_worker(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=5.0)
        q.lease("w", ttl=5.0)
        clock.now += 4.0
        assert q.heartbeat("w", ttl=5.0) == 2
        clock.now += 4.0  # would be past the original expiry
        assert q.lease("thief", ttl=5.0) == "u-c"  # pending, not stolen
        assert q.snapshot().reissues == 0

    def test_attempts_count_reissues(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock, ids=["u-a"])
        q.lease("w1", ttl=1.0)
        clock.now += 10.0
        assert q.lease("w2", ttl=1.0) == "u-a"  # nothing pending: steal
        q.compact()  # fold the journal so the snapshot is current
        doc = json.loads((tmp_path / "q" / "MANIFEST.json").read_text())
        assert doc["units"]["u-a"]["attempts"] == 2


class TestCompleteRelease:
    def test_complete_is_idempotent_and_any_worker(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w1", ttl=1.0)
        assert q.complete("other", "u-a") is True  # thief completes
        assert q.complete("w1", "u-a") is False    # resurrected holder
        assert q.snapshot().completions == 1

    def test_complete_unknown_unit_raises(self, tmp_path):
        q = make_queue(tmp_path, Clock())
        with pytest.raises(FabricError, match="unknown unit"):
            q.complete("w", "nope")

    def test_release_returns_unit_to_pending(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=100.0)
        q.release("w", "u-a")
        assert q.lease("w2", ttl=1.0) == "u-a"  # immediately leasable

    def test_release_ignores_foreign_lease(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=100.0)
        q.release("other", "u-a")  # not the holder: no-op
        assert q.snapshot().leased == 1

    def test_finished_when_all_done(self, tmp_path):
        q = make_queue(tmp_path, Clock())
        for uid in IDS:
            q.lease("w", ttl=10.0)
            q.complete("w", uid)
        assert q.finished()
        assert q.lease("w", ttl=10.0) is None


class TestCreateResume:
    def test_predone_units_start_done(self, tmp_path):
        q = make_queue(tmp_path, Clock(), done=["u-b"])
        snap = q.snapshot()
        assert (snap.pending, snap.done) == (2, 1)
        assert q.lease("w", ttl=1.0) == "u-a"
        assert q.lease("w", ttl=1.0) == "u-c"

    def test_resume_keeps_done_and_counters(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w", ttl=10.0)
        q.complete("w", "u-a")
        q2 = make_queue(tmp_path, clock)  # same sweep id, same units
        snap = q2.snapshot()
        assert snap.done == 1 and snap.completions == 1
        assert q2.lease("w", ttl=1.0) == "u-b"

    def test_resume_unions_new_predone(self, tmp_path):
        clock = Clock()
        make_queue(tmp_path, clock)
        q2 = make_queue(tmp_path, clock, done=["u-c"])
        assert q2.snapshot().done == 1

    def test_other_sweep_id_refused(self, tmp_path):
        make_queue(tmp_path, Clock())
        with pytest.raises(FabricError, match="belongs to sweep"):
            WorkQueue.create(tmp_path / "q", "sweep-2", IDS, clock=Clock())

    def test_other_unit_set_refused(self, tmp_path):
        make_queue(tmp_path, Clock())
        with pytest.raises(FabricError, match="different unit set"):
            WorkQueue.create(
                tmp_path / "q", "sweep-1", ["u-x"], clock=Clock()
            )

    def test_duplicate_and_unknown_predone_refused(self, tmp_path):
        with pytest.raises(FabricError, match="duplicate"):
            WorkQueue.create(tmp_path / "q1", "s", ["u", "u"])
        with pytest.raises(FabricError, match="not in the sweep"):
            WorkQueue.create(tmp_path / "q2", "s", ["u"], done=["z"])

    def test_corrupt_manifest_surfaces_as_fabric_error(self, tmp_path):
        q = make_queue(tmp_path, Clock())
        q.path.write_text("{not json")
        with pytest.raises(FabricError, match="unreadable"):
            q.snapshot()
        q.path.write_text(json.dumps({"format": "other/9"}))
        with pytest.raises(FabricError, match="format"):
            q.snapshot()


class TestSnapshot:
    def test_counts_workers_and_liveness(self, tmp_path):
        clock = Clock()
        q = make_queue(tmp_path, clock)
        q.lease("w1", ttl=10.0)
        clock.now += 100.0
        q.lease("w2", ttl=10.0)
        snap = q.snapshot()
        assert isinstance(snap, QueueSnapshot)
        assert set(snap.workers) == {"w1", "w2"}
        assert snap.live_workers(clock.now, window=5.0) == 1
        doc = snap.to_dict()
        assert doc["total"] == 3 and doc["finished"] is False
