"""Shared fixtures for the sweep-fabric tests: a tiny fast spec."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSpec, TrialConfig
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=3, n_tasks_range=(12, 16), depth_range=(4, 6))


def make_spec(series=("PURE", "ADAPT-L"), x_values=(2, 3)):
    def config(x, metric):
        return TrialConfig(
            workload=FAST.with_overrides(m=int(x)), metric=metric
        )

    return ExperimentSpec(
        name="fabric-test",
        title="fabric test sweep",
        x_label="m",
        x_values=x_values,
        series=series,
        config_for=config,
    )


@pytest.fixture
def spec() -> ExperimentSpec:
    return make_spec()
