"""End-to-end local sweeps: bit-identity, crash recovery, resume.

The fabric's headline contract, exercised with real worker processes:
``run_sweep`` equals single-process ``run_experiment`` byte for byte,
survives a SIGKILLed worker via lease expiry, finishes inline when no
workers exist, and a re-run over the same store recomputes nothing.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.experiments.runner import run_experiment
from repro.fabric import FabricCoordinator, LocalTransport, run_sweep
from repro.store import TrialStore

TRIALS, SEED, CHUNK = 10, 77, 4


def result_text(result) -> str:
    doc = result.to_dict()
    doc.pop("elapsed_seconds", None)
    return json.dumps(doc, sort_keys=True)


@pytest.fixture(scope="module")
def reference(spec_module):
    result = run_experiment(
        spec_module, trials=TRIALS, seed=SEED, jobs=1, chunk_size=CHUNK
    )
    return result_text(result)


@pytest.fixture(scope="module")
def spec_module():
    from .conftest import make_spec

    return make_spec()


class TestRunSweep:
    def test_inline_only_sweep_is_bit_identical(
        self, spec_module, reference, tmp_path
    ):
        outcome = run_sweep(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            workers=0,
            chunk_size=CHUNK,
            store=tmp_path / "s",
        )
        assert result_text(outcome.result) == reference
        report = outcome.report
        assert report.units == 6
        assert report.completions == 6
        assert report.prestored_units == 0

    def test_worker_processes_are_bit_identical(
        self, spec_module, reference, tmp_path
    ):
        outcome = run_sweep(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            workers=2,
            chunk_size=CHUNK,
            store=tmp_path / "s",
            lease_ttl=10.0,
        )
        assert result_text(outcome.result) == reference
        snap_workers = outcome.report.workers_spawned
        assert 0 < snap_workers <= 2  # clamped to outstanding units

    def test_sigkilled_worker_does_not_lose_the_sweep(
        self, spec_module, reference, tmp_path
    ):
        # Kill one of the two workers as soon as it exists; the short
        # lease TTL lets the survivor (or the coordinator's inline
        # fallback) steal whatever it held.  The sweep must complete
        # and stay bit-identical no matter when the kill lands.
        def kill_first(pids):
            assert pids
            os.kill(pids[0], signal.SIGKILL)

        outcome = run_sweep(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            workers=2,
            chunk_size=CHUNK,
            store=tmp_path / "s",
            lease_ttl=0.8,
            on_workers=kill_first,
        )
        assert result_text(outcome.result) == reference
        assert outcome.report.completions + outcome.report.prestored_units >= 6

    def test_resume_recomputes_nothing(
        self, spec_module, reference, tmp_path
    ):
        store = tmp_path / "s"
        run_sweep(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            workers=0,
            chunk_size=CHUNK,
            store=store,
        )
        outcome = run_sweep(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            workers=0,
            chunk_size=CHUNK,
            store=store,
        )
        assert result_text(outcome.result) == reference
        report = outcome.report
        assert report.prestored_units == 6
        assert report.leases == 0 and report.completions == 0


class TestCoordinator:
    def test_expired_lease_is_finished_by_inline_fallback(
        self, spec_module, tmp_path
    ):
        coordinator = FabricCoordinator(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            chunk_size=CHUNK,
            store=tmp_path / "s",
            lease_ttl=0.3,
        )
        try:
            # A phantom worker takes one unit and dies silently.
            transport = LocalTransport(coordinator.store, coordinator.root)
            assert transport.lease("phantom", 0.3) is not None
            time.sleep(0.4)
            coordinator.run_inline(poll=0.05)
            snap = coordinator.queue.snapshot()
            assert snap.finished
            assert snap.reissues == 1
        finally:
            coordinator.close()

    def test_partial_store_premarks_units(self, spec_module, tmp_path):
        store = TrialStore(tmp_path / "s")
        # Warm half the grid through the ordinary cache path...
        run_experiment(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            jobs=1,
            chunk_size=CHUNK,
            cache=store,
        )
        # ...then a sweep over the same store has nothing left to do.
        coordinator = FabricCoordinator(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            chunk_size=CHUNK,
            store=store,
        )
        assert coordinator.prestored == 6
        assert coordinator.queue.finished()
        coordinator.execute(workers=0)  # returns immediately
        store.close()

    def test_other_chunk_size_matches_its_own_reference(
        self, spec_module, tmp_path
    ):
        # Bit-identity is per chunk size (the single-process engine's
        # own merge grouping): a chunk-3 sweep must equal a chunk-3
        # single-process run, not the chunk-4 reference.
        single = run_experiment(
            spec_module, trials=TRIALS, seed=SEED, jobs=1, chunk_size=3
        )
        outcome = run_sweep(
            spec_module,
            trials=TRIALS,
            seed=SEED,
            workers=0,
            chunk_size=3,
            store=tmp_path / "s",
        )
        assert result_text(outcome.result) == result_text(single)
