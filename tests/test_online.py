"""Unit tests for on-line admission control (§7.2, [13])."""

import pytest

from repro.errors import SchedulingError
from repro.graph import chain_graph, fork_join_graph
from repro.online import AdmissionController
from repro.sched import validate_schedule
from repro.system import identical_platform


def app(wcets=(10, 20, 15)):
    return chain_graph(list(wcets))


class TestAdmission:
    def test_admits_into_idle_machine(self):
        ctrl = AdmissionController(identical_platform(2), metric="PURE")
        decision = ctrl.submit(
            "app1", app(), arrival=0.0, relative_deadline=90.0
        )
        assert decision.admitted
        assert decision.response_time <= 90.0
        assert ctrl.admitted_ids() == ["app1"]

    def test_tasks_shifted_to_arrival(self):
        ctrl = AdmissionController(identical_platform(2))
        ctrl.submit("a", app(), arrival=100.0, relative_deadline=90.0)
        sched = ctrl.schedule_of("a")
        assert all(e.start >= 100.0 for e in sched)
        assert all(e.absolute_deadline <= 190.0 + 1e-9 for e in sched)

    def test_namespaced_ids(self):
        ctrl = AdmissionController(identical_platform(2))
        ctrl.submit("a", app(), arrival=0.0, relative_deadline=90.0)
        assert "a.t0" in ctrl.schedule_of("a").entries

    def test_rejects_overload(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        assert ctrl.submit("a", app(), arrival=0.0, relative_deadline=50.0)
        # the machine is busy until 45; a same-deadline app can't fit
        decision = ctrl.submit(
            "b", app(), arrival=0.0, relative_deadline=50.0
        )
        assert not decision.admitted
        assert decision.reason
        assert ctrl.admitted_ids() == ["a"]

    def test_rejected_app_leaves_no_trace(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        ctrl.submit("a", app(), arrival=0.0, relative_deadline=50.0)
        horizon = ctrl.utilization_horizon()
        ctrl.submit("b", app(), arrival=0.0, relative_deadline=50.0)
        assert ctrl.utilization_horizon() == horizon

    def test_admits_after_load_drains(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        ctrl.submit("a", app(), arrival=0.0, relative_deadline=50.0)
        # arriving later, the same application fits again
        decision = ctrl.submit(
            "b", app(), arrival=60.0, relative_deadline=50.0
        )
        assert decision.admitted

    def test_commitments_never_overlap(self):
        ctrl = AdmissionController(identical_platform(2), metric="ADAPT-L")
        graphs = [
            app(),
            fork_join_graph([[10, 10], [15]]),
            app((5, 5)),
        ]
        t = 0.0
        for i, g in enumerate(graphs):
            ctrl.submit(f"app{i}", g, arrival=t, relative_deadline=120.0)
            t += 20.0
        combined = ctrl.combined_schedule()
        # no processor runs two commitments at once
        for p in ("p1", "p2"):
            rows = combined.tasks_on(p)
            for a, b in zip(rows, rows[1:]):
                assert a.finish <= b.start + 1e-9

    def test_admitted_schedules_are_structurally_valid(self):
        platform = identical_platform(2)
        ctrl = AdmissionController(platform)
        g = fork_join_graph([[10, 10], [15, 5]])
        decision = ctrl.submit("a", g, arrival=5.0, relative_deadline=150.0)
        assert decision.admitted
        # validate against a namespaced copy of the submitted graph
        from repro.graph import relabel

        shifted_ids = relabel(g, lambda t: f"a.{t}")
        sched = ctrl.schedule_of("a")
        problems = validate_schedule(sched, shifted_ids, platform)
        assert problems == []


class TestRejectionRollback:
    """A rejected application must leave every commitment untouched."""

    def _loaded_controller(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        assert ctrl.submit("keep", app(), arrival=0.0, relative_deadline=50.0)
        return ctrl

    def test_deadline_infeasible_app_rejected_with_reason(self):
        ctrl = AdmissionController(identical_platform(2), metric="PURE")
        # total work 45 on a chain; a 20-unit window cannot hold it
        decision = ctrl.submit(
            "tight", app(), arrival=0.0, relative_deadline=20.0
        )
        assert not decision.admitted
        assert decision.reason

    def test_admitted_ids_stable_after_rejection(self):
        ctrl = self._loaded_controller()
        ctrl.submit("reject", app(), arrival=0.0, relative_deadline=50.0)
        assert ctrl.admitted_ids() == ["keep"]

    def test_committed_schedule_unchanged_after_rejection(self):
        ctrl = self._loaded_controller()
        before = {
            tid: (e.processor, e.start, e.finish)
            for tid, e in ctrl.combined_schedule().entries.items()
        }
        horizon = ctrl.utilization_horizon()
        ctrl.submit("reject", app(), arrival=0.0, relative_deadline=50.0)
        after = {
            tid: (e.processor, e.start, e.finish)
            for tid, e in ctrl.combined_schedule().entries.items()
        }
        assert after == before
        assert ctrl.utilization_horizon() == horizon

    def test_rejected_id_can_be_resubmitted_later(self):
        ctrl = self._loaded_controller()
        rejected = ctrl.submit(
            "retry", app(), arrival=0.0, relative_deadline=50.0
        )
        assert not rejected.admitted
        # the id left no trace, so a later (feasible) retry is admitted
        retried = ctrl.submit(
            "retry", app(), arrival=60.0, relative_deadline=50.0
        )
        assert retried.admitted
        assert ctrl.admitted_ids() == ["keep", "retry"]

    def test_clock_advances_even_on_rejection(self):
        ctrl = self._loaded_controller()
        ctrl.submit("reject", app(), arrival=10.0, relative_deadline=1.0)
        assert ctrl.clock == 10.0
        with pytest.raises(SchedulingError):
            ctrl.submit("late", app(), arrival=5.0, relative_deadline=50.0)

    def test_degenerate_rejection_rolls_back_too(self):
        ctrl = self._loaded_controller()
        horizon = ctrl.utilization_horizon()
        decision = ctrl.submit(
            "degen", chain_graph([5, 50]), arrival=0.0, relative_deadline=10.0
        )
        assert not decision.admitted
        assert ctrl.utilization_horizon() == horizon
        assert ctrl.admitted_ids() == ["keep"]


class TestGuards:
    def test_duplicate_id_rejected(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        ctrl.submit("a", app(), arrival=0.0, relative_deadline=90.0)
        with pytest.raises(SchedulingError):
            ctrl.submit("a", app(), arrival=1.0, relative_deadline=90.0)

    def test_time_travel_rejected(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        ctrl.submit("a", app(), arrival=10.0, relative_deadline=90.0)
        with pytest.raises(SchedulingError):
            ctrl.submit("b", app(), arrival=5.0, relative_deadline=90.0)

    def test_nonpositive_deadline_rejected(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        with pytest.raises(SchedulingError):
            ctrl.submit("a", app(), arrival=0.0, relative_deadline=0.0)

    def test_unknown_schedule_lookup(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        with pytest.raises(SchedulingError):
            ctrl.schedule_of("ghost")

    def test_degenerate_distribution_rejected_cleanly(self):
        ctrl = AdmissionController(identical_platform(1), metric="PURE")
        g = chain_graph([5, 50])
        decision = ctrl.submit("a", g, arrival=0.0, relative_deadline=10.0)
        assert not decision.admitted
        assert "degenerate" in decision.reason or decision.reason
