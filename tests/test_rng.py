"""Unit tests for deterministic RNG plumbing."""

import numpy as np

from repro.rng import (
    choice_index,
    derive_seed,
    iter_trial_seeds,
    make_rng,
    spawn_rngs,
    trial_rng,
)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, 1, 2) == derive_seed(7, 1, 2)

    def test_index_path_matters(self):
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)

    def test_root_matters(self):
        assert derive_seed(7, 1) != derive_seed(8, 1)

    def test_fits_63_bits(self):
        for i in range(50):
            assert 0 <= derive_seed(1, i) < 2**63


class TestTrialRng:
    def test_independent_streams(self):
        a = trial_rng(9, 0).random(8)
        b = trial_rng(9, 1).random(8)
        assert not np.allclose(a, b)

    def test_reproducible(self):
        assert np.allclose(trial_rng(9, 3).random(8), trial_rng(9, 3).random(8))

    def test_spawn_rngs(self):
        rngs = spawn_rngs(5, 4)
        assert len(rngs) == 4
        draws = {float(r.random()) for r in rngs}
        assert len(draws) == 4

    def test_iter_trial_seeds(self):
        seeds = list(iter_trial_seeds(5, 10))
        assert len(set(seeds)) == 10


class TestChoiceIndex:
    def test_respects_weights(self):
        rng = make_rng(0)
        picks = [choice_index(rng, [0.0, 1.0, 0.0]) for _ in range(20)]
        assert set(picks) == {1}

    def test_distribution_roughly_proportional(self):
        rng = make_rng(1)
        picks = [choice_index(rng, [1.0, 3.0]) for _ in range(2000)]
        frac = sum(1 for p in picks if p == 1) / len(picks)
        assert 0.68 <= frac <= 0.82

    def test_zero_sum_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            choice_index(make_rng(0), [0.0, 0.0])


class TestTimeHelpers:
    def test_time_comparisons(self):
        from repro.types import time_almost_equal, time_geq, time_leq

        assert time_almost_equal(1.0, 1.0 + 1e-12)
        assert not time_almost_equal(1.0, 1.001)
        assert time_leq(1.0 + 1e-12, 1.0)
        assert time_geq(1.0, 1.0 + 1e-12)
        assert not time_leq(2.0, 1.0)
        # scale-aware tolerance
        assert time_leq(1e9 + 1.0, 1e9, eps=1e-8)
