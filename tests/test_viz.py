"""Unit tests for SVG rendering."""

import xml.etree.ElementTree as ET

from repro.core import distribute_deadlines
from repro.sched import EdfListScheduler, schedule_edf
from repro.viz import gantt_svg, graph_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestGanttSvg:
    def test_well_formed_with_all_tasks(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        s = schedule_edf(chain3, uni2, a)
        root = parse(gantt_svg(s, uni2, a))
        assert root.tag == f"{SVG_NS}svg"
        rects = root.findall(f".//{SVG_NS}rect")
        # 3 task boxes + 3 window underlays
        assert len(rects) == 6
        text = ET.tostring(root, encoding="unicode")
        assert "feasible" in text

    def test_windows_optional(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        s = schedule_edf(chain3, uni2, a)
        root = parse(gantt_svg(s, uni2))
        assert len(root.findall(f".//{SVG_NS}rect")) == 3

    def test_misses_highlighted(self, chain3, uni2):
        from repro.core import DeadlineAssignment, TaskWindow

        a = DeadlineAssignment(
            windows={t: TaskWindow(0.0, 1.0, 1.0) for t in chain3.task_ids()}
        )
        s = EdfListScheduler(continue_on_miss=True).schedule(chain3, uni2, a)
        svg = gantt_svg(s, uni2, a)
        assert "#d62728" in svg  # the miss colour
        assert "INFEASIBLE" in svg

    def test_escapes_ids(self, uni2):
        from repro.core import DeadlineAssignment, TaskWindow
        from repro.graph import GraphBuilder

        g = GraphBuilder().task("a<b&c", 10).build()
        a = DeadlineAssignment(windows={"a<b&c": TaskWindow(0.0, 20.0, 20.0)})
        s = schedule_edf(g, uni2, a)
        parse(gantt_svg(s, uni2, a))  # must stay well-formed


class TestGraphSvg:
    def test_well_formed(self, diamond):
        root = parse(graph_svg(diamond))
        rects = root.findall(f".//{SVG_NS}rect")
        lines = root.findall(f".//{SVG_NS}line")
        assert len(rects) == diamond.n_tasks
        assert len(lines) == diamond.n_edges

    def test_layered_rows(self, diamond):
        root = parse(graph_svg(diamond))
        ys = sorted(
            {float(r.get("y")) for r in root.findall(f".//{SVG_NS}rect")}
        )
        assert len(ys) == 3  # three levels

    def test_generated_graph_renders(self):
        from repro.rng import make_rng
        from repro.workload import WorkloadParams, generate_workload

        wl = generate_workload(
            WorkloadParams(m=3, n_tasks_range=(15, 20), depth_range=(4, 6)),
            make_rng(2),
        )
        root = parse(graph_svg(wl.graph))
        assert len(root.findall(f".//{SVG_NS}rect")) == wl.graph.n_tasks
