"""Unit tests for workload summaries."""

import math

import pytest

from repro.analysis import format_summary, summarize_workload
from repro.graph import chain_graph, diamond_graph


class TestSummarizeWorkload:
    def test_chain(self):
        g = chain_graph([10, 20, 30], e2e_deadline=90.0)
        s = summarize_workload(g)
        assert s.n_tasks == 3
        assert s.n_edges == 2
        assert s.depth == 3
        assert s.level_widths == (1, 1, 1)
        assert s.total_workload == 60.0
        assert s.longest_path == 60.0
        assert s.parallelism == pytest.approx(1.0)
        assert s.n_inputs == s.n_outputs == 1
        assert s.olr_estimate == pytest.approx(1.5)

    def test_diamond_widths(self):
        g = diamond_graph(e2e_deadline=60.0)
        s = summarize_workload(g)
        assert s.level_widths == (1, 2, 1)
        assert s.max_width == 2
        assert s.parallelism == pytest.approx(40.0 / 30.0)

    def test_platform_awareness(self, hetero_graph, hetero_platform):
        s = summarize_workload(hetero_graph, hetero_platform)
        assert s.m == 3 and s.m_e == 2
        # task c is slow-only: one ineligible (task, class) pair
        assert s.ineligible_pairs == 1

    def test_no_deadline_gives_nan_olr(self):
        g = chain_graph([10, 10])
        assert math.isnan(summarize_workload(g).olr_estimate)

    def test_generated_workload_summary(self):
        from repro.rng import make_rng
        from repro.workload import WorkloadParams, generate_workload

        wl = generate_workload(WorkloadParams(m=3), make_rng(0))
        s = summarize_workload(wl.graph, wl.platform)
        assert 40 <= s.n_tasks <= 60
        assert 8 <= s.depth <= 12
        assert sum(s.level_widths) == s.n_tasks
        assert s.olr_estimate == pytest.approx(0.8, abs=1e-6)


class TestFormatSummary:
    def test_renders(self, hetero_graph, hetero_platform):
        out = format_summary(summarize_workload(hetero_graph, hetero_platform))
        assert "avg parallelism" in out
        assert "processors (m)" in out
        assert "observed OLR" in out
