"""Unit tests for ASCII charts."""

import pytest

from repro.analysis import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart([2, 3, 4], {"A": [0.1, 0.5, 1.0]})
        assert "o=A" in out
        assert "1.00 |" in out
        assert "0.00 |" in out

    def test_multiple_series_get_distinct_marks(self):
        out = ascii_chart([1], {"A": [0.2], "B": [0.8]})
        assert "o=A" in out and "x=B" in out

    def test_values_clipped(self):
        out = ascii_chart([1], {"A": [5.0]})  # clipped to y_max
        assert "o" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"A": [0.5]})

    def test_empty_x(self):
        assert ascii_chart([], {}) == "(no data)"

    def test_min_height_enforced(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"A": [0.5]}, height=1)
