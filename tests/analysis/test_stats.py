"""Unit tests for success-ratio statistics."""

import math

import pytest

from repro.analysis import BinomialEstimate, mean_std, wilson_interval


class TestWilson:
    def test_contains_point_estimate(self):
        for s, n in ((0, 10), (5, 10), (10, 10), (512, 1024)):
            lo, hi = wilson_interval(s, n)
            assert lo <= s / n <= hi

    def test_bounded_by_unit_interval(self):
        for s, n in ((0, 3), (3, 3), (1, 1000)):
            lo, hi = wilson_interval(s, n)
            assert 0.0 <= lo <= hi <= 1.0

    def test_narrows_with_sample_size(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_empty_sample_uninformative(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_known_value(self):
        # classic check: 8/10 with z=1.96 -> approx (0.490, 0.943)
        lo, hi = wilson_interval(8, 10)
        assert lo == pytest.approx(0.490, abs=0.005)
        assert hi == pytest.approx(0.943, abs=0.005)


class TestBinomialEstimate:
    def test_ratio(self):
        assert BinomialEstimate(3, 4).ratio == 0.75
        assert BinomialEstimate(0, 0).ratio == 0.0

    def test_merge_pools_samples(self):
        merged = BinomialEstimate(2, 5).merged(BinomialEstimate(3, 5))
        assert merged == BinomialEstimate(5, 10)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            BinomialEstimate(5, 4)

    def test_str_contains_fraction(self):
        assert "(3/4)" in str(BinomialEstimate(3, 4))


class TestMeanStd:
    def test_basic(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert std == pytest.approx(1.0)

    def test_single_value(self):
        assert mean_std([5.0]) == (5.0, 0.0)

    def test_empty(self):
        mean, std = mean_std([])
        assert math.isnan(mean) and math.isnan(std)
