"""Unit tests for table formatting."""

import pytest

from repro.analysis import format_markdown_table, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "v"], [["abc", 1], ["d", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_floats_formatted(self):
        out = format_table(["x"], [[0.123456]])
        assert "0.123" in out

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestMarkdown:
    def test_structure(self):
        out = format_markdown_table(["a", "b"], [[1, 2]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])
