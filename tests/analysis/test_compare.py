"""Unit tests for paired comparisons and the exact sign test."""

import math

import pytest

from repro.analysis import (
    PairedComparison,
    paired_comparison,
    sign_test_p_value,
)
from repro.errors import ExperimentError
from repro.experiments import TrialConfig
from repro.experiments.runner import _cell_seeds
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=3, n_tasks_range=(12, 16), depth_range=(4, 6))


class TestSignTest:
    def test_no_discordance_is_uninformative(self):
        assert sign_test_p_value(0, 0) == 1.0

    def test_balanced_split_not_significant(self):
        assert sign_test_p_value(5, 5) > 0.5

    def test_extreme_split_significant(self):
        assert sign_test_p_value(10, 0) < 0.01

    def test_known_value(self):
        # 8 vs 2 discordant: p = 2 * sum_{i<=2} C(10,i) / 2^10 = 0.109375
        assert sign_test_p_value(8, 2) == pytest.approx(0.109375)

    def test_symmetric(self):
        assert sign_test_p_value(7, 3) == sign_test_p_value(3, 7)

    def test_bounded_by_one(self):
        for a in range(6):
            for b in range(6):
                assert 0.0 <= sign_test_p_value(a, b) <= 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sign_test_p_value(-1, 2)


class TestPairedComparison:
    def test_ratios_consistent(self):
        pc = PairedComparison("A", "B", 10, both_succeed=4, both_fail=2,
                              only_a=3, only_b=1)
        assert pc.ratio_a == pytest.approx(0.7)
        assert pc.ratio_b == pytest.approx(0.5)
        assert pc.discordant == 4
        assert 0.0 <= pc.p_value <= 1.0
        assert "A" in pc.summary() and "p=" in pc.summary()

    def test_identical_configs_fully_concordant(self):
        config = TrialConfig(workload=FAST, metric="PURE")
        seeds = _cell_seeds(3, 0, 12)
        pc = paired_comparison(config, config, seeds)
        assert pc.discordant == 0
        assert pc.p_value == 1.0

    def test_etd_zero_equivalence_is_concordant(self):
        params = FAST.with_overrides(etd=0.0)
        a = TrialConfig(workload=params, metric="PURE")
        b = TrialConfig(workload=params, metric="ADAPT-G")
        pc = paired_comparison(a, b, _cell_seeds(4, 0, 12))
        assert pc.discordant == 0  # identical distributions per graph

    def test_differing_workloads_rejected(self):
        a = TrialConfig(workload=FAST)
        b = TrialConfig(workload=FAST.with_overrides(m=4))
        with pytest.raises(ExperimentError):
            paired_comparison(a, b, [1, 2])

    def test_empty_seeds_rejected(self):
        config = TrialConfig(workload=FAST)
        with pytest.raises(ExperimentError):
            paired_comparison(config, config, [])

    def test_adapt_l_vs_pure_directionally_positive(self):
        params = FAST.with_overrides(olr=0.65)
        a = TrialConfig(workload=params, metric="ADAPT-L")
        b = TrialConfig(workload=params, metric="PURE")
        pc = paired_comparison(a, b, _cell_seeds(9, 0, 40))
        assert pc.only_a >= pc.only_b  # ADAPT-L never behind overall
