"""Unit tests for the analytical infeasibility screens."""

import pytest

from repro.analysis import find_infeasibility, is_certainly_infeasible
from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.errors import SchedulingError
from repro.graph import GraphBuilder, chain_graph
from repro.system import identical_platform


def windows(spec):
    return DeadlineAssignment(
        windows={tid: TaskWindow(a, d, a + d) for tid, (a, d) in spec.items()}
    )


class TestWindowFit:
    def test_too_short_window_detected(self, uni2):
        g = GraphBuilder().task("x", 10).build()
        w = find_infeasibility(g, uni2, windows({"x": (0, 5)}))
        assert w is not None and w.kind == "window-fit"

    def test_uses_fastest_class(self):
        from repro.system import Platform, Processor, ProcessorClass

        g = GraphBuilder().task("x", {"fast": 6.0, "slow": 12.0}).build()
        p = Platform(
            [Processor("p1", "fast"), Processor("p2", "slow")],
            [ProcessorClass("fast"), ProcessorClass("slow")],
        )
        # window of 8 fits the fast class even though slow won't
        assert find_infeasibility(g, p, windows({"x": (0, 8)})) is None

    def test_missing_window_raises(self, uni2):
        g = GraphBuilder().task("x", 10).build()
        with pytest.raises(SchedulingError):
            find_infeasibility(g, uni2, windows({}))

    def test_no_eligible_class(self, uni2):
        g = GraphBuilder().task("x", {"gpu": 5.0}).build()
        w = find_infeasibility(g, uni2, windows({"x": (0, 50)}))
        assert w is not None and w.kind == "window-fit"


class TestPrecedenceFit:
    def test_chain_that_cannot_make_its_deadlines(self, uni2):
        g = chain_graph([10, 10], e2e_deadline=50.0)
        # each window individually fits, but the chain cannot: t1's
        # deadline (18) precedes t0's earliest finish (10) + c (10).
        a = windows({"t0": (0, 12), "t1": (6, 12)})
        w = find_infeasibility(g, uni2, a)
        assert w is not None and w.kind == "precedence-fit"

    def test_feasible_chain_passes(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        assert find_infeasibility(chain3, uni2, a) is None


class TestIntervalDemand:
    def test_overloaded_interval_detected(self):
        # three 10-unit tasks crammed into a 15-unit window on 1 proc
        g = (
            GraphBuilder()
            .task("x", 10).task("y", 10).task("z", 10)
            .build()
        )
        p = identical_platform(1)
        a = windows({t: (0, 15) for t in ("x", "y", "z")})
        w = find_infeasibility(g, p, a)
        assert w is not None and w.kind == "interval-demand"

    def test_same_load_fits_two_processors(self):
        g = (
            GraphBuilder()
            .task("x", 10).task("y", 10).task("z", 10)
            .build()
        )
        p = identical_platform(2)
        a = windows({t: (0, 15) for t in ("x", "y", "z")})
        assert find_infeasibility(g, p, a) is None

    def test_staggered_windows_checked_pairwise(self):
        # overload hides in an inner interval [10, 20]
        g = (
            GraphBuilder()
            .task("a", 8).task("b", 8).task("c", 8)
            .build()
        )
        p = identical_platform(1)
        a = windows({"a": (0, 30), "b": (10, 10), "c": (12, 8)})
        w = find_infeasibility(g, p, a)
        assert w is not None and w.kind == "interval-demand"


class TestAgainstExactSearch:
    def test_witness_implies_bnb_infeasible(self):
        """Soundness: the screen may only fire when B&B proves infeasible."""
        from repro.core import distribute_deadlines
        from repro.rng import make_rng
        from repro.sched import BnbStatus, schedule_branch_and_bound
        from repro.workload import WorkloadParams, generate_workload

        params = WorkloadParams(
            m=2, n_tasks_range=(8, 12), depth_range=(3, 5), olr=0.55
        )
        fired = 0
        for seed in range(15):
            wl = generate_workload(params, make_rng(seed))
            a = distribute_deadlines(wl.graph, wl.platform, "PURE")
            if is_certainly_infeasible(wl.graph, wl.platform, a):
                fired += 1
                result = schedule_branch_and_bound(
                    wl.graph, wl.platform, a, node_budget=150_000
                )
                assert result.status is BnbStatus.INFEASIBLE
        # The regime is tight enough that the screen fires sometimes;
        # if this stops holding after recalibration, loosen the OLR.
        assert fired >= 1
