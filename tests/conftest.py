"""Shared fixtures: canonical small graphs and platforms."""

from __future__ import annotations

import pytest

from repro.graph import GraphBuilder, TaskGraph
from repro.system import (
    Platform,
    Processor,
    ProcessorClass,
    SharedBus,
    identical_platform,
)


@pytest.fixture
def chain3() -> TaskGraph:
    """a(10) -> b(20) -> c(15), E-T-E deadline 90."""
    return (
        GraphBuilder()
        .task("a", 10)
        .task("b", 20)
        .task("c", 15)
        .edge("a", "b")
        .edge("b", "c")
        .e2e("a", "c", 90)
        .build()
    )


@pytest.fixture
def diamond() -> TaskGraph:
    """top -> {left, right} -> bottom, uniform 10s, deadline 60."""
    return (
        GraphBuilder()
        .task("top", 10)
        .task("left", 10)
        .task("right", 10)
        .task("bottom", 10)
        .edge("top", "left")
        .edge("top", "right")
        .edge("left", "bottom")
        .edge("right", "bottom")
        .e2e("top", "bottom", 60)
        .build()
    )


@pytest.fixture
def hetero_graph() -> TaskGraph:
    """Three tasks with per-class WCETs over classes fast/slow."""
    return (
        GraphBuilder()
        .task("a", {"fast": 8.0, "slow": 12.0})
        .task("b", {"fast": 16.0, "slow": 24.0})
        .task("c", {"slow": 10.0})
        .edge("a", "b", message=2.0)
        .edge("b", "c", message=1.0)
        .e2e("a", "c", 120)
        .build()
    )


@pytest.fixture
def uni2() -> Platform:
    """Two identical processors on the paper's shared bus."""
    return identical_platform(2)


@pytest.fixture
def uni3() -> Platform:
    """Three identical processors."""
    return identical_platform(3)


@pytest.fixture
def hetero_platform() -> Platform:
    """Two classes (fast/slow), three processors, shared bus."""
    return Platform(
        processors=[
            Processor("p1", "fast"),
            Processor("p2", "slow"),
            Processor("p3", "slow"),
        ],
        classes=[
            ProcessorClass("fast", speed_factor=1.5),
            ProcessorClass("slow", speed_factor=1.0),
        ],
        comm=SharedBus(1.0),
    )
