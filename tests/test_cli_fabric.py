"""CLI tests for the ``repro sweep`` and ``repro store`` subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main, store_main, sweep_main
from repro.store import TrialStore


@pytest.fixture
def small_store(tmp_path):
    store = TrialStore(tmp_path / "s")
    store.put("aa" * 32, {"v": 1})
    store.put("bb" * 32, {"v": 2})
    store.close()
    # A duplicate segment line, as a crashed-then-reissued worker's
    # double commit would leave it (the store dedups live puts).
    seg = tmp_path / "s" / "segments" / "aa.jsonl"
    line = seg.read_text().splitlines()[0]
    with seg.open("a") as fh:
        fh.write(line + "\n")
    return tmp_path / "s"


class TestStoreCLI:
    def test_stats(self, small_store, capsys):
        assert main(["store", "stats", str(small_store)]) == 0
        out = capsys.readouterr().out
        assert "2 unique records" in out
        assert "1 duplicate" in out

    def test_verify_clean_after_compact(self, small_store, capsys):
        assert store_main(["compact", str(small_store)]) == 0
        assert store_main(["verify", str(small_store)]) == 0
        out = capsys.readouterr().out
        assert "duplicates   0" in out

    def test_verify_flags_corruption(self, small_store, capsys):
        # A terminated undecodable interior line is real corruption.
        seg = small_store / "segments" / "aa.jsonl"
        seg.write_text('not json\n' + seg.read_text())
        assert store_main(["verify", str(small_store)]) == 1
        assert "CORRUPT" in capsys.readouterr().err

    def test_compact_with_budget_evicts(self, small_store, capsys):
        assert store_main(["compact", str(small_store), "--max-bytes", "80"]) == 0
        assert "evicted" in capsys.readouterr().out

    def test_not_a_store_is_refused(self, tmp_path, capsys):
        assert store_main(["stats", str(tmp_path / "nope")]) == 2
        assert "MANIFEST.json" in capsys.readouterr().err


class TestSweepCLI:
    def test_usage_errors(self, tmp_path, capsys):
        # No experiment named (and not a worker) is a usage error...
        assert sweep_main(["--store", str(tmp_path / "s")]) == 2
        # ...as are both a figure and a config...
        cfg = tmp_path / "c.json"
        cfg.write_text("{}")
        assert sweep_main(
            ["fig2", "--config", str(cfg), "--store", str(tmp_path / "s")]
        ) == 2
        # ...and a coordinator without a store.
        assert sweep_main(["fig2"]) == 2
        assert main(["sweep", "fig99", "--store", str(tmp_path / "s")]) == 2

    def test_inline_sweep_writes_outputs(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "fig2",
                "--trials", "2",
                "--seed", "3",
                "--chunk-size", "2",
                "--workers", "0",
                "--store", str(tmp_path / "s"),
                "--out", str(tmp_path / "out"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fabric:" in out and "completed" in out
        doc = json.loads((tmp_path / "out" / "fig2.json").read_text())
        assert doc["trials_per_cell"] == 2
        assert (tmp_path / "out" / "fig2.csv").exists()
        assert (tmp_path / "out" / "fig2.md").exists()

    def test_rerun_resumes_from_store(self, tmp_path, capsys):
        argv = [
            "sweep",
            "fig2",
            "--trials", "2",
            "--chunk-size", "2",
            "--workers", "0",
            "--store", str(tmp_path / "s"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 completed over 0 leases" in out
