"""Unit tests for canned scenarios."""

import numpy as np

from repro.graph import validate_graph
from repro.workload import (
    control_pipeline_graph,
    paper_defaults,
    sensor_fusion_graph,
    small_system,
    uniform_execution_times,
)


class TestParamScenarios:
    def test_paper_defaults(self):
        p = paper_defaults(m=4, olr=0.6)
        assert p.m == 4 and p.olr == 0.6 and p.etd == 0.25

    def test_small_system(self):
        assert small_system().m == 2

    def test_uniform_execution_times(self):
        assert uniform_execution_times().etd == 0.0


class TestGraphScenarios:
    def test_control_pipeline_structure(self):
        g = control_pipeline_graph(stages=4, rng=np.random.default_rng(0))
        assert g.input_tasks() == ["sense"]
        assert g.output_tasks() == ["actuate"]
        assert validate_graph(g).ok
        # endpoints have strict locality: single eligible class
        assert len(g.task("sense").wcet) == 1
        assert len(g.task("stage1").wcet) == 2

    def test_sensor_fusion_structure(self):
        g = sensor_fusion_graph(n_sensors=3, rng=np.random.default_rng(0))
        assert len(g.input_tasks()) == 3
        assert g.output_tasks() == ["act"]
        assert validate_graph(g).ok
        assert set(g.predecessors("fuse")) == {
            "filter0", "filter1", "filter2"
        }

    def test_engine_control_is_multirate(self):
        import numpy as np

        from repro.workload import engine_control_graph

        g = engine_control_graph(rng=np.random.default_rng(0))
        periods = {t.period for t in g.tasks()}
        assert periods == {20.0, 40.0, 80.0}
        assert validate_graph(g).ok

    def test_engine_control_plans_and_schedules(self):
        import numpy as np

        from repro.core import distribute_deadlines
        from repro.periodic import expand_multirate_graph
        from repro.sched import (
            build_dispatch_tables,
            schedule_edf,
            validate_schedule,
        )
        from repro.system import Platform, Processor, ProcessorClass
        from repro.workload import engine_control_graph

        g = engine_control_graph(rng=np.random.default_rng(1))
        unrolled = expand_multirate_graph(g)  # one hyperperiod (80)
        # fast loop appears 4x, medium 2x, slow once
        assert "inj_sense#4" in unrolled
        assert "lam_sense#2" in unrolled
        assert "thermal_sense#2" not in unrolled

        platform = Platform(
            [Processor("ecu1", "ecu"), Processor("dsp1", "dsp")],
            [ProcessorClass("ecu"), ProcessorClass("dsp")],
        )
        a = distribute_deadlines(unrolled, platform, "ADAPT-L")
        s = schedule_edf(unrolled, platform, a)
        assert s.feasible
        assert validate_schedule(s, unrolled, platform, a) == []
        tables = build_dispatch_tables(s, platform, cycle_length=80.0)
        assert sum(len(t.entries) for t in tables.values()) == unrolled.n_tasks

    def test_scenarios_schedule_end_to_end(self, hetero_platform):
        from repro.core import distribute_deadlines
        from repro.sched import schedule_edf, validate_schedule
        from repro.system import Platform, Processor, ProcessorClass

        platform = Platform(
            [Processor("p1", "dsp"), Processor("p2", "cpu")],
            [ProcessorClass("dsp"), ProcessorClass("cpu")],
        )
        g = control_pipeline_graph(rng=np.random.default_rng(1))
        a = distribute_deadlines(g, platform, "ADAPT-L")
        s = schedule_edf(g, platform, a)
        assert s.feasible
        assert validate_schedule(s, g, platform, a) == []
