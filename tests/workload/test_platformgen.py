"""Unit tests for random platform generation (§5.1)."""

from repro.rng import make_rng
from repro.system import SharedBus
from repro.workload import WorkloadParams, generate_platform


class TestGeneratePlatform:
    def test_processor_count(self):
        for m in (2, 5, 8):
            p = generate_platform(WorkloadParams(m=m), make_rng(0))
            assert p.m == m

    def test_class_count_in_range(self):
        rng = make_rng(1)
        for _ in range(20):
            p = generate_platform(WorkloadParams(m=8), rng)
            assert 1 <= p.m_e <= 3

    def test_every_class_is_instantiated(self):
        rng = make_rng(2)
        for _ in range(20):
            p = generate_platform(WorkloadParams(m=4), rng)
            assert sorted(p.used_class_ids()) == sorted(p.class_ids())

    def test_classes_capped_by_m(self):
        rng = make_rng(3)
        for _ in range(20):
            p = generate_platform(WorkloadParams(m=1), rng)
            assert p.m_e == 1

    def test_shared_bus_with_configured_delay(self):
        p = generate_platform(
            WorkloadParams(m=3, bus_delay_per_item=2.5), make_rng(0)
        )
        assert isinstance(p.comm, SharedBus)
        assert p.comm.per_item_delay == 2.5

    def test_deterministic(self):
        p1 = generate_platform(WorkloadParams(m=6), make_rng(9))
        p2 = generate_platform(WorkloadParams(m=6), make_rng(9))
        assert [p.cls for p in p1.processors()] == [
            p.cls for p in p2.processors()
        ]
