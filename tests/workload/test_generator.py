"""Unit tests for the random workload generator (§5.2)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graph import graph_depth, validate_graph
from repro.rng import make_rng
from repro.workload import (
    WorkloadParams,
    generate_task_graph,
    generate_workload,
)


@pytest.fixture
def params():
    return WorkloadParams(m=3)


def graphs(params, n=20, seed=0):
    rng = make_rng(seed)
    return [
        generate_task_graph(params, rng, ["e1", "e2"]) for _ in range(n)
    ]


class TestStructure:
    def test_task_count_in_range(self, params):
        for g in graphs(params):
            assert 40 <= g.n_tasks <= 60

    def test_depth_in_range(self, params):
        for g in graphs(params):
            assert 8 <= graph_depth(g) <= 12

    def test_fan_in_bounds(self, params):
        for g in graphs(params, n=10):
            inputs = set(g.input_tasks())
            for tid in g.task_ids():
                if tid not in inputs:
                    assert 1 <= g.in_degree(tid) <= 3

    def test_graphs_are_valid(self, params):
        for g in graphs(params, n=10):
            report = validate_graph(g)
            assert report.ok, report.errors

    def test_every_task_reaches_io(self, params):
        # No orphan components: every non-input task has a predecessor.
        for g in graphs(params, n=10):
            inputs = set(g.input_tasks())
            for tid in g.task_ids():
                assert tid in inputs or g.in_degree(tid) >= 1


class TestTiming:
    def test_wcets_in_etd_interval(self):
        p = WorkloadParams(m=3, etd=0.25)
        for g in graphs(p, n=10):
            for t in g.tasks():
                for c in t.wcet.values():
                    assert 15.0 <= c <= 25.0
                    assert c == int(c)  # integer time units

    def test_etd_zero_gives_identical_times(self):
        p = WorkloadParams(m=3, etd=0.0)
        for g in graphs(p, n=5):
            for t in g.tasks():
                assert set(t.wcet.values()) == {20.0}

    def test_etd_full_keeps_positive_times(self):
        p = WorkloadParams(m=3, etd=1.0)
        for g in graphs(p, n=5):
            for t in g.tasks():
                for c in t.wcet.values():
                    assert 1.0 <= c <= 40.0

    def test_continuous_times_option(self):
        p = WorkloadParams(m=3, integer_times=False)
        rng = make_rng(1)
        g = generate_task_graph(p, rng, ["e1"])
        values = [c for t in g.tasks() for c in t.wcet.values()]
        assert any(v != int(v) for v in values)


class TestEligibility:
    def test_every_task_has_a_class(self, params):
        for g in graphs(params, n=10):
            for t in g.tasks():
                assert len(t.wcet) >= 1

    def test_ineligibility_rate_roughly_five_percent(self):
        p = WorkloadParams(m=3, ineligibility_prob=0.05)
        rng = make_rng(42)
        missing = total = 0
        for _ in range(30):
            g = generate_task_graph(p, rng, ["e1", "e2", "e3"])
            for t in g.tasks():
                total += 3
                missing += 3 - len(t.wcet)
        rate = missing / total
        assert 0.02 <= rate <= 0.09

    def test_zero_ineligibility(self):
        p = WorkloadParams(m=3, ineligibility_prob=0.0)
        rng = make_rng(0)
        g = generate_task_graph(p, rng, ["e1", "e2"])
        assert all(len(t.wcet) == 2 for t in g.tasks())


class TestMessages:
    def test_ccr_controls_mean_message_cost(self):
        p = WorkloadParams(m=3, ccr=0.1)
        sizes = [
            size
            for g in graphs(p, n=20, seed=3)
            for _, _, size in g.edges()
        ]
        # mean size should approximate CCR x c_mean = 2 items
        assert 1.7 <= np.mean(sizes) <= 2.3
        assert all(1 <= s <= 3 for s in sizes)

    def test_zero_ccr_gives_empty_messages(self):
        p = WorkloadParams(m=3, ccr=0.0)
        rng = make_rng(0)
        g = generate_task_graph(p, rng, ["e1"])
        assert all(size == 0.0 for _, _, size in g.edges())


class TestDeadlines:
    def test_workload_mode_uniform_deadline(self):
        p = WorkloadParams(m=3, olr=0.8)
        rng = make_rng(7)
        g = generate_task_graph(p, rng, ["e1", "e2"])
        total = sum(t.mean_wcet() for t in g.tasks())
        deadlines = set(g.e2e_deadlines().values())
        assert len(deadlines) == 1
        assert deadlines.pop() == pytest.approx(0.8 * total)
        # every input-output pair is covered
        assert len(g.e2e_deadlines()) == len(g.input_tasks()) * len(
            g.output_tasks()
        )

    def test_pair_surplus_mode_varies_by_pair(self):
        p = WorkloadParams(m=3, olr=0.5, deadline_mode="pair-surplus")
        rng = make_rng(7)
        g = generate_task_graph(p, rng, ["e1", "e2"])
        deadlines = g.e2e_deadlines()
        assert deadlines  # connected pairs exist
        assert len(set(round(v, 6) for v in deadlines.values())) > 1

    def test_pair_surplus_deadline_covers_critical_chain(self):
        p = WorkloadParams(m=3, olr=0.0001, deadline_mode="pair-surplus")
        rng = make_rng(9)
        g = generate_task_graph(p, rng, ["e1"])
        # with OLR ~ 0 every deadline collapses to the pair's chain,
        # which is always >= the endpoint's own execution time
        for (a1, a2), d in g.e2e_deadlines().items():
            assert d >= g.task(a2).mean_wcet() - 1e-6


class TestDeterminism:
    def test_same_seed_same_workload(self, params):
        w1 = generate_workload(params, make_rng(123))
        w2 = generate_workload(params, make_rng(123))
        from repro.graph import graph_to_dict

        assert graph_to_dict(w1.graph) == graph_to_dict(w2.graph)
        assert [p.cls for p in w1.platform.processors()] == [
            p.cls for p in w2.platform.processors()
        ]

    def test_different_seeds_differ(self, params):
        w1 = generate_workload(params, make_rng(1))
        w2 = generate_workload(params, make_rng(2))
        from repro.graph import graph_to_dict

        assert graph_to_dict(w1.graph) != graph_to_dict(w2.graph)


class TestErrors:
    def test_empty_class_list_rejected(self, params):
        with pytest.raises(WorkloadError):
            generate_task_graph(params, make_rng(0), [])
