"""Unit tests for WorkloadParams validation and serialization."""

import pytest

from repro.errors import WorkloadError
from repro.workload import WorkloadParams


class TestDefaults:
    def test_paper_defaults(self):
        p = WorkloadParams()
        assert p.n_tasks_range == (40, 60)
        assert p.depth_range == (8, 12)
        assert p.fan_range == (1, 3)
        assert p.c_mean == 20.0
        assert p.etd == 0.25
        assert p.olr == 0.8
        assert p.ccr == 0.1
        assert p.ineligibility_prob == 0.05
        assert p.n_classes_range == (1, 3)
        assert p.bus_delay_per_item == 1.0

    def test_derived_quantities(self):
        p = WorkloadParams(etd=0.5)
        assert p.wcet_bounds == (10.0, 30.0)
        assert p.mean_message_cost == pytest.approx(2.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(m=0),
            dict(etd=-0.1),
            dict(etd=1.5),
            dict(olr=0.0),
            dict(ccr=-1.0),
            dict(ineligibility_prob=1.0),
            dict(n_tasks_range=(10, 5)),
            dict(depth_range=(0, 5)),
            dict(fan_range=(0, 3)),
            dict(depth_range=(50, 60), n_tasks_range=(40, 60)),
            dict(bus_delay_per_item=-1.0),
            dict(level_skew=0.0),
            dict(deadline_mode="nonsense"),
            dict(c_mean=0.5, integer_times=True),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadParams(**kwargs)

    def test_etd_one_allowed(self):
        WorkloadParams(etd=1.0)


class TestOverrides:
    def test_with_overrides(self):
        p = WorkloadParams().with_overrides(m=5, olr=0.6)
        assert p.m == 5 and p.olr == 0.6
        assert p.etd == 0.25  # untouched

    def test_original_unchanged(self):
        p = WorkloadParams()
        p.with_overrides(m=8)
        assert p.m == 3


class TestSerialization:
    def test_round_trip(self):
        p = WorkloadParams(m=5, etd=0.5, level_skew=3.0,
                           deadline_mode="pair-surplus")
        p2 = WorkloadParams.from_dict(p.to_dict())
        assert p2 == p
