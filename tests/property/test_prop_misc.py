"""Property-based tests for statistics, planning and estimation."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import BinomialEstimate, wilson_interval
from repro.core import WCET_AVG, WCET_MAX, WCET_MIN
from repro.graph import Task
from repro.periodic import hyperperiod


@given(st.integers(0, 200), st.integers(0, 200))
@settings(max_examples=200, deadline=None)
def test_wilson_interval_is_valid(successes, extra):
    trials = successes + extra
    lo, hi = wilson_interval(successes, trials)
    assert 0.0 <= lo <= hi <= 1.0
    if trials:
        assert lo - 1e-12 <= successes / trials <= hi + 1e-12


@given(
    st.integers(0, 50), st.integers(0, 50),
    st.integers(0, 50), st.integers(0, 50),
)
@settings(max_examples=100, deadline=None)
def test_binomial_merge_is_exact(s1, e1, s2, e2):
    a = BinomialEstimate(s1, s1 + e1)
    b = BinomialEstimate(s2, s2 + e2)
    m = a.merged(b)
    assert m.successes == s1 + s2
    assert m.trials == s1 + e1 + s2 + e2


@given(st.lists(st.integers(1, 40), min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_hyperperiod_divisible_by_every_period(periods):
    L = hyperperiod([float(p) for p in periods])
    for p in periods:
        ratio = Fraction(L).limit_denominator(10**6) / Fraction(p)
        assert ratio.denominator == 1
    assert L >= max(periods)


@given(
    st.dictionaries(
        st.sampled_from(["e1", "e2", "e3"]),
        st.floats(0.5, 100.0, allow_nan=False),
        min_size=1,
    )
)
@settings(max_examples=100, deadline=None)
def test_estimator_ordering(wcet):
    task = Task(id="t", wcet=wcet)
    lo = WCET_MIN.estimate(task)
    mid = WCET_AVG.estimate(task)
    hi = WCET_MAX.estimate(task)
    eps = 1e-9 * max(1.0, hi)
    assert lo - eps <= mid <= hi + eps
    assert min(wcet.values()) == lo
    assert max(wcet.values()) == hi


@given(st.floats(0.1, 3.0, allow_nan=False), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_virtual_time_monotone_in_surplus(k_g, m):
    from repro.core import virtual_times_global

    est = {"a": 10.0, "b": 25.0}
    v1 = virtual_times_global(est, xi=2.0, m=m, k_g=k_g, c_thres=15.0)
    v2 = virtual_times_global(est, xi=4.0, m=m, k_g=k_g, c_thres=15.0)
    # more parallelism -> at least as much inflation, never less
    assert v2["b"] >= v1["b"]
    assert v1["a"] == v2["a"] == 10.0  # below threshold: untouched
