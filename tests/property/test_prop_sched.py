"""Property-based tests for the schedulers against the oracle validator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import distribute_deadlines
from repro.sched import EdfListScheduler, schedule_edf, validate_schedule
from repro.sched.preemptive import schedule_preemptive_edf
from repro.system import identical_platform

from .strategies import dag_with_deadline

METRICS = ["PURE", "NORM", "ADAPT-G", "ADAPT-L"]


@given(dag_with_deadline(), st.sampled_from(METRICS), st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_edf_output_always_validates(graph, metric, m):
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, metric)
    schedule = schedule_edf(graph, platform, assignment)
    problems = validate_schedule(schedule, graph, platform, assignment)
    assert problems == [], problems


@given(dag_with_deadline(), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_continue_on_miss_places_every_task(graph, m):
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, "PURE")
    sched = EdfListScheduler(continue_on_miss=True).schedule(
        graph, platform, assignment
    )
    assert len(sched.entries) == graph.n_tasks
    # structural validity holds regardless of deadline misses
    problems = validate_schedule(
        sched, graph, platform, assignment, check_deadlines=False
    )
    assert problems == [], problems


@given(dag_with_deadline(), st.sampled_from(METRICS), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_fail_fast_agrees_with_lateness(graph, metric, m):
    # The fail-fast verdict must agree with the completed schedule's
    # maximum lateness: both modes follow the same deterministic EDF
    # order, so "feasible" iff no task is late.
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, metric)
    fast = schedule_edf(graph, platform, assignment)
    full = EdfListScheduler(continue_on_miss=True).schedule(
        graph, platform, assignment
    )
    assert fast.feasible == (full.max_lateness() <= 1e-9)


@given(dag_with_deadline(), st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_preemptive_completes_all_tasks(graph, m):
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, "PURE")
    sched = schedule_preemptive_edf(graph, platform, assignment)
    assert len(sched.entries) == graph.n_tasks
    # precedence: finish order respects the partial order
    for src, dst, _ in graph.edges():
        assert sched.finish_time(dst) > sched.finish_time(src) - 1e-9


@given(dag_with_deadline(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_makespan_dominates_load_bound(graph, m):
    # Sanity bound: the makespan can never beat the perfectly balanced
    # lower bound max(total work / m, longest task).
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, "PURE")
    sched = EdfListScheduler(continue_on_miss=True).schedule(
        graph, platform, assignment
    )
    total = sum(graph.task(t).wcet_on("default") for t in graph.task_ids())
    longest = max(graph.task(t).wcet_on("default") for t in graph.task_ids())
    assert sched.makespan >= max(total / m, longest) - 1e-6
