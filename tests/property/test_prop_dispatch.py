"""Property-based tests for dispatch tables and admission control."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import distribute_deadlines
from repro.sched import EdfListScheduler, build_dispatch_tables
from repro.system import identical_platform

from .strategies import dag_with_deadline


@given(dag_with_deadline(), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_dispatch_tables_partition_the_cycle(graph, m):
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, "PURE")
    sched = EdfListScheduler(continue_on_miss=True).schedule(
        graph, platform, assignment
    )
    cycle = float(max(1, math.ceil(sched.makespan)))
    tables = build_dispatch_tables(sched, platform, cycle_length=cycle)
    for table in tables.values():
        busy = table.busy_time()
        idle = sum(b - a for a, b in table.gaps())
        assert abs(busy + idle - cycle) <= 1e-6 * max(1.0, cycle)
        # gaps and entries never overlap, jointly ordered
        marks = [(e.start, e.finish) for e in table.entries] + table.gaps()
        marks.sort()
        for (a1, b1), (a2, b2) in zip(marks, marks[1:]):
            assert b1 <= a2 + 1e-9


@given(dag_with_deadline(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_running_at_agrees_with_entries(graph, m):
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, "NORM")
    sched = EdfListScheduler(continue_on_miss=True).schedule(
        graph, platform, assignment
    )
    cycle = float(max(1, math.ceil(sched.makespan)))
    tables = build_dispatch_tables(sched, platform, cycle_length=cycle)
    for table in tables.values():
        for e in table.entries:
            mid = (e.start + e.finish) / 2.0
            assert table.running_at(mid) == e.task_id
            # and again one cycle later
            assert table.running_at(mid + cycle) == e.task_id


@given(
    st.lists(
        st.tuples(
            st.integers(1, 25),  # chain task count scale
            st.integers(40, 160),  # relative deadline
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=30, deadline=None)
def test_admission_commitments_are_monotone(requests):
    from repro.graph import chain_graph
    from repro.online import AdmissionController

    ctrl = AdmissionController(identical_platform(2), metric="PURE")
    t = 0.0
    horizon = 0.0
    for i, (scale, deadline) in enumerate(requests):
        graph = chain_graph([float(5 + scale), float(5 + scale // 2)])
        decision = ctrl.submit(
            f"r{i}", graph, arrival=t, relative_deadline=float(deadline)
        )
        new_horizon = ctrl.utilization_horizon()
        if decision.admitted:
            assert new_horizon >= horizon - 1e-9
        else:
            assert new_horizon == horizon  # rejections leave no trace
        horizon = new_horizon
        t += 7.0
    # the combined schedule never overlaps on any processor
    combined = ctrl.combined_schedule()
    for proc in ("p1", "p2"):
        rows = combined.tasks_on(proc)
        for a, b in zip(rows, rows[1:]):
            assert a.finish <= b.start + 1e-9
