"""Property-based tests for the slicing invariants (§4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import distribute_deadlines, estimate_map, get_metric
from repro.system import identical_platform
from repro.types import time_leq

from .strategies import dag_with_deadline

METRICS = ["PURE", "NORM", "ADAPT-G", "ADAPT-L"]


@given(dag_with_deadline(), st.sampled_from(METRICS), st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_slicing_invariants(graph, metric, m):
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, metric)

    # Every task receives a well-formed window.
    for tid in graph.task_ids():
        w = assignment.window(tid)
        assert w.relative_deadline >= -1e-9
        assert abs(
            w.absolute_deadline - (w.arrival + w.relative_deadline)
        ) <= 1e-6

    if not assignment.degenerate:
        # Non-degenerate distributions satisfy every invariant, which
        # jointly imply the path constraint (eq. 1) on all paths.
        assert assignment.violations(graph) == []


@given(dag_with_deadline(looseness_min=1.2), st.sampled_from(["PURE", "NORM"]))
@settings(max_examples=60, deadline=None)
def test_loose_deadlines_never_degenerate_nonadaptive(graph, metric):
    # With the window comfortably above the total workload, no slice
    # can go negative for the non-adaptive metrics.  (The adaptive
    # metrics' *virtual* volume can exceed even a loose window — the
    # eq. 6 fragility documented in DESIGN.md — so they are excluded.)
    platform = identical_platform(2)
    assignment = distribute_deadlines(graph, platform, metric)
    assert not assignment.degenerate
    assert assignment.violations(graph) == []


@given(dag_with_deadline(looseness_min=1.2), st.sampled_from(METRICS))
@settings(max_examples=60, deadline=None)
def test_adaptive_degeneracy_stays_well_formed(graph, metric):
    # Even when an adaptive metric overdraws a window, every produced
    # window must stay monotone with a non-negative relative deadline.
    platform = identical_platform(2)
    a = distribute_deadlines(graph, platform, metric)
    for tid in graph.task_ids():
        w = a.window(tid)
        assert w.relative_deadline >= -1e-9
        assert w.arrival <= w.absolute_deadline + 1e-9


@given(dag_with_deadline(), st.sampled_from(METRICS))
@settings(max_examples=60, deadline=None)
def test_slices_are_contiguous_within_paths(graph, metric):
    # The defining property of the slicing technique: along a selected
    # critical path, every task arrives exactly when its predecessor's
    # window closes — no gaps and no overlap.
    platform = identical_platform(2)
    a = distribute_deadlines(graph, platform, metric)
    for path in a.paths:
        for prev, nxt in zip(path, path[1:]):
            assert abs(
                a.absolute_deadline(prev) - a.arrival(nxt)
            ) <= 1e-6 * max(1.0, a.absolute_deadline(prev))
        span = a.absolute_deadline(path[-1]) - a.arrival(path[0])
        total = sum(a.relative_deadline(t) for t in path)
        assert time_leq(abs(span - total), 1e-6 * max(1.0, span))


@given(dag_with_deadline(), st.sampled_from(METRICS))
@settings(max_examples=60, deadline=None)
def test_determinism(graph, metric):
    platform = identical_platform(3)
    a1 = distribute_deadlines(graph, platform, metric)
    a2 = distribute_deadlines(graph, platform, metric)
    assert a1.to_dict() == a2.to_dict()


@given(dag_with_deadline())
@settings(max_examples=40, deadline=None)
def test_paths_partition_tasks(graph):
    platform = identical_platform(2)
    a = distribute_deadlines(graph, platform, "ADAPT-L")
    seen: set[str] = set()
    for path in a.paths:
        for tid in path:
            assert tid not in seen  # each task assigned exactly once
            seen.add(tid)
    assert seen == set(graph.task_ids())
