"""Property-based tests for the analysis/statistics layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import BinomialEstimate, sign_test_p_value
from repro.experiments.runner import CellResult
from repro.experiments.robustness import RobustnessResult


@given(st.integers(0, 40), st.integers(0, 40))
@settings(max_examples=150, deadline=None)
def test_sign_test_properties(a, b):
    p = sign_test_p_value(a, b)
    assert 0.0 <= p <= 1.0
    # symmetry
    assert p == sign_test_p_value(b, a)
    # adding equal evidence to both sides cannot fabricate significance
    # out of a balanced split
    if a == b:
        assert p > 0.5


@given(st.integers(1, 30), st.integers(0, 30))
@settings(max_examples=100, deadline=None)
def test_sign_test_monotone_in_imbalance(n, k):
    # for fixed total n, a more extreme split is never less significant
    total = n + k
    p_balanced = sign_test_p_value((total + 1) // 2, total // 2)
    p_extreme = sign_test_p_value(total, 0)
    assert p_extreme <= p_balanced + 1e-12


@st.composite
def rank_tables(draw):
    metrics = [f"M{i}" for i in range(draw(st.integers(2, 4)))]
    n_conf = draw(st.integers(1, 5))
    trials = 10
    res = RobustnessResult(
        metrics=metrics, configurations=[{}] * n_conf, trials_per_cell=trials
    )
    for ci in range(n_conf):
        for m in metrics:
            succ = draw(st.integers(0, trials))
            res.ratios[(ci, m)] = CellResult(BinomialEstimate(succ, trials))
    for ci in range(n_conf):
        values = [res.ratio(ci, m) for m in metrics]
        if max(values) < 0.02 or min(values) > 0.98:
            continue
        res.informative.append(ci)
    return res


@given(rank_tables())
@settings(max_examples=100, deadline=None)
def test_rank_invariants(res):
    k = len(res.metrics)
    for ci in res.informative:
        ranks = {
            m: 1 + sum(
                1 for o in res.metrics
                if res.ratio(ci, o) > res.ratio(ci, m) + 1e-12
            )
            for m in res.metrics
        }
        # ranks live in [1, k] and someone is always rank 1
        assert all(1 <= r <= k for r in ranks.values())
        assert min(ranks.values()) == 1
    for m in res.metrics:
        assert 0.0 <= res.max_regret(m) <= 1.0
        if res.informative:
            assert 1.0 <= res.mean_rank(m) <= k
            assert 0.0 <= res.first_place_share(m) <= 1.0


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                min_size=1, max_size=6))
@settings(max_examples=80, deadline=None)
def test_cell_merge_is_associative_on_counts(pairs):
    cells = [
        CellResult(BinomialEstimate(min(s, t), t))
        for s, t in ((s, s + t) for s, t in pairs)
    ]
    left = cells[0]
    for c in cells[1:]:
        left = left.merged(c)
    right = cells[-1]
    for c in reversed(cells[:-1]):
        right = c.merged(right)
    assert left.estimate == right.estimate
    assert left.trials == sum(c.trials for c in cells)
