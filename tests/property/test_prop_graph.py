"""Property-based tests for graph algorithms (hypothesis)."""

import networkx as nx
from hypothesis import given, settings

from repro.graph import TransitiveClosure, average_parallelism, static_levels

from .strategies import task_graphs


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_closure_matches_networkx(graph):
    closure = TransitiveClosure(graph)
    oracle = nx.transitive_closure(graph.to_networkx())
    for u in graph.task_ids():
        assert closure.descendants(u) == set(oracle.successors(u))


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_parallel_set_partition(graph):
    # self + ancestors + descendants + parallel set == all tasks
    closure = TransitiveClosure(graph)
    all_ids = set(graph.task_ids())
    for tid in graph.task_ids():
        anc = closure.ancestors(tid)
        desc = closure.descendants(tid)
        psi = closure.parallel_set(tid)
        assert anc | desc | psi | {tid} == all_ids
        assert not (anc & desc) and not (anc & psi) and not (desc & psi)
        assert closure.parallel_set_size(tid) == len(psi)


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_parallel_set_symmetry(graph):
    closure = TransitiveClosure(graph)
    for u in graph.task_ids():
        for v in closure.parallel_set(u):
            assert u in closure.parallel_set(v)


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_static_levels_dominate_successors(graph):
    cost = lambda t: graph.task(t).mean_wcet()
    levels = static_levels(graph, cost)
    for tid in graph.task_ids():
        assert levels[tid] >= cost(tid) - 1e-9
        for succ in graph.successors(tid):
            assert levels[tid] >= levels[succ] + cost(tid) - 1e-9


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_average_parallelism_bounds(graph):
    cost = lambda t: graph.task(t).mean_wcet()
    xi = average_parallelism(graph, cost)
    # 1 <= xi <= n for any DAG with positive costs
    assert 1.0 - 1e-9 <= xi <= graph.n_tasks + 1e-9


@given(task_graphs())
@settings(max_examples=40, deadline=None)
def test_chain_contraction_preserves_structure(graph):
    from repro.graph import contract_chains

    cost_before = lambda t: graph.task(t).mean_wcet()
    before = static_levels(graph, cost_before)
    contracted, mapping = contract_chains(graph)
    assert contracted.is_acyclic()
    # total workload conserved
    total_before = sum(graph.task(t).mean_wcet() for t in graph.task_ids())
    total_after = sum(
        contracted.task(t).mean_wcet() for t in contracted.task_ids()
    )
    assert abs(total_before - total_after) <= 1e-6 * max(1.0, total_before)
    # longest path conserved
    cost_after = lambda t: contracted.task(t).mean_wcet()
    lp_before = max(before.values())
    lp_after = max(static_levels(contracted, cost_after).values())
    assert abs(lp_before - lp_after) <= 1e-6 * max(1.0, lp_before)
    # mapping covers everything and maps into the contracted graph
    assert set(mapping) == set(graph.task_ids())
    assert set(mapping.values()) == set(contracted.task_ids())


@given(task_graphs())
@settings(max_examples=40, deadline=None)
def test_relabel_is_invertible(graph):
    from repro.graph import relabel

    forward = relabel(graph, lambda t: f"x.{t}")
    back = relabel(forward, lambda t: t[2:])
    assert sorted(back.edges()) == sorted(graph.edges())
    assert back.task_ids() == graph.task_ids()


@given(task_graphs())
@settings(max_examples=40, deadline=None)
def test_serialization_round_trip(graph):
    from repro.graph import graph_from_dict, graph_to_dict

    graph.set_uniform_e2e_deadline(100.0)
    again = graph_from_dict(graph_to_dict(graph))
    assert sorted(again.edges()) == sorted(graph.edges())
    assert again.e2e_deadlines() == graph.e2e_deadlines()
    for tid in graph.task_ids():
        assert again.task(tid).wcet == graph.task(tid).wcet
