"""Hypothesis strategies for random DAG workloads.

The generator builds small layered DAGs directly (not via the §5.2
workload generator) so the property tests explore structural corners —
singleton levels, heavy fan-in, isolated tasks — that the calibrated
generator avoids.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph import Task, TaskGraph

__all__ = ["task_graphs", "dag_with_deadline"]


@st.composite
def task_graphs(
    draw,
    max_levels: int = 5,
    max_width: int = 4,
    max_wcet: float = 30.0,
    n_classes: int = 2,
) -> TaskGraph:
    """A random layered DAG with per-class WCETs and message sizes."""
    n_levels = draw(st.integers(1, max_levels))
    widths = [draw(st.integers(1, max_width)) for _ in range(n_levels)]
    graph = TaskGraph()
    ids_by_level: list[list[str]] = []
    counter = 0
    # Every task is eligible on "default" (so `identical_platform`
    # always works); extra classes are optional per task.
    extra_classes = [f"e{k}" for k in range(1, n_classes)]
    for width in widths:
        ids_by_level.append([])
        for _ in range(width):
            tid = f"n{counter}"
            counter += 1
            eligible = ["default"]
            if extra_classes:
                eligible += draw(
                    st.lists(
                        st.sampled_from(extra_classes),
                        max_size=len(extra_classes),
                        unique=True,
                    )
                )
            wcet = {
                cls: draw(
                    st.floats(
                        1.0, max_wcet, allow_nan=False, allow_infinity=False
                    )
                )
                for cls in eligible
            }
            graph.add_task(Task(id=tid, wcet=wcet))
            ids_by_level[-1].append(tid)
    # Wire each non-top task to a subset of earlier tasks (at least one
    # from the previous level so the level structure is meaningful).
    for level in range(1, n_levels):
        earlier = [t for lvl in ids_by_level[:level] for t in lvl]
        for tid in ids_by_level[level]:
            prev = draw(st.sampled_from(ids_by_level[level - 1]))
            preds = {prev}
            extra = draw(
                st.lists(st.sampled_from(earlier), max_size=2, unique=True)
            )
            preds.update(extra)
            for p in preds:
                size = draw(st.sampled_from([0.0, 1.0, 3.0]))
                graph.add_edge(p, tid, size)
    return graph


@st.composite
def dag_with_deadline(draw, looseness_min: float = 0.3) -> TaskGraph:
    """A random DAG with a uniform E-T-E deadline attached."""
    graph = draw(task_graphs())
    # Budget the looseness against the volume the slicer will actually
    # estimate: on the identical platforms these tests use, WCET-AVG
    # reduces to the "default"-class WCET, which can exceed mean_wcet()
    # when a task carries a cheap extra class.
    total = sum(t.wcet["default"] for t in graph.tasks())
    factor = draw(
        st.floats(looseness_min, 3.0, allow_nan=False, allow_infinity=False)
    )
    graph.set_uniform_e2e_deadline(max(factor * total, 1.0))
    return graph
