"""Property-based tests for the assignment, bounds and trace subsystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign import cluster_assignment, exact_estimates
from repro.analysis import is_certainly_infeasible
from repro.core import distribute_deadlines
from repro.sched import (
    EdfListScheduler,
    iter_events,
    load_trace_csv,
    save_trace_csv,
    schedule_edf,
)
from repro.system import identical_platform

from .strategies import dag_with_deadline, task_graphs


@given(task_graphs(), st.integers(1, 4), st.floats(0.5, 3.0))
@settings(max_examples=50, deadline=None)
def test_clustering_covers_all_tasks_eligibly(graph, m, balance):
    platform = identical_platform(m)
    assignment = cluster_assignment(graph, platform, balance_factor=balance)
    assert set(assignment.mapping) == set(graph.task_ids())
    for task in graph.tasks():
        proc = assignment.processor_of(task.id)
        assert task.is_eligible(platform.class_of(proc))
    # exact estimates are defined and positive for every task
    exact = exact_estimates(graph, platform, assignment)
    assert all(v > 0 for v in exact.values())


@given(task_graphs())
@settings(max_examples=40, deadline=None)
def test_clustering_zeroed_traffic_bounded_by_total(graph):
    platform = identical_platform(2)
    assignment = cluster_assignment(graph, platform)
    total = sum(size for _, _, size in graph.edges())
    assert 0.0 <= assignment.zeroed_traffic <= total + 1e-9
    # zeroed traffic is exactly the intra-processor message volume
    intra = sum(
        size
        for src, dst, size in graph.edges()
        if assignment.processor_of(src) == assignment.processor_of(dst)
    )
    assert abs(assignment.zeroed_traffic - intra) <= 1e-9


@given(dag_with_deadline(), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_infeasibility_screen_is_sound_vs_edf(graph, m):
    # Necessary condition: if the screen fires, EDF must fail too.
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, "PURE")
    if is_certainly_infeasible(graph, platform, assignment):
        assert not schedule_edf(graph, platform, assignment).feasible


@given(dag_with_deadline(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_trace_round_trip(tmp_path_factory, graph, m):
    platform = identical_platform(m)
    assignment = distribute_deadlines(graph, platform, "NORM")
    sched = EdfListScheduler(continue_on_miss=True).schedule(
        graph, platform, assignment
    )
    path = tmp_path_factory.mktemp("traces") / "t.csv"
    save_trace_csv(sched, path)
    again = load_trace_csv(path)
    assert len(again) == len(sched)
    for e in sched:
        e2 = again.entry(e.task_id)
        assert e2.processor == e.processor
        assert abs(e2.start - e.start) <= 1e-9 * max(1.0, e.start)
    # events pair up and are chronological
    events = iter_events(again)
    times = [ev.time for ev in events]
    assert times == sorted(times)
    assert len(events) == 2 * len(again)
