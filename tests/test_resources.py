"""Unit tests for the shared-resource extension (§7.3)."""

import pytest

from repro.core import AdaptiveParams, distribute_deadlines
from repro.graph import GraphBuilder
from repro.resources import (
    ResourceAwareAdaptL,
    resource_parallel_sets,
    resource_usage,
    with_resources,
)
from repro.sched import schedule_edf, validate_schedule
from repro.system import identical_platform


@pytest.fixture
def wide():
    """s -> {x, y, z} -> t, with x and y sharing a resource."""
    g = (
        GraphBuilder()
        .task("s", 5).task("x", 20).task("y", 20).task("z", 20).task("t", 5)
        .edge("s", "x").edge("s", "y").edge("s", "z")
        .edge("x", "t").edge("y", "t").edge("z", "t")
        .e2e("s", "t", 200)
        .build()
    )
    return with_resources(g, {"x": {"db"}, "y": {"db"}})


class TestWithResources:
    def test_attaches_resources(self, wide):
        assert wide.task("x").resources == {"db"}
        assert wide.task("z").resources == frozenset()

    def test_preserves_structure(self, wide):
        assert wide.n_tasks == 5
        assert wide.has_edge("s", "x")
        assert wide.e2e_deadline("s", "t") == 200.0

    def test_original_untouched(self):
        g = GraphBuilder().task("a", 1).build()
        g2 = with_resources(g, {"a": {"r"}})
        assert g.task("a").resources == frozenset()
        assert g2.task("a").resources == {"r"}


class TestResourceUsage:
    def test_usage_map(self, wide):
        assert resource_usage(wide) == {"db": ["x", "y"]}

    def test_empty(self):
        g = GraphBuilder().task("a", 1).build()
        assert resource_usage(g) == {}


class TestResourceParallelSets:
    def test_counts_match_plain_psi(self, wide):
        # sizes equal |Psi| (the refinement reweights, not recounts)
        sizes = resource_parallel_sets(wide)
        assert sizes["x"] == 2  # y and z
        assert sizes["s"] == 0


class TestResourceAwareMetric:
    def test_serialized_peers_weighted_fully(self, wide):
        est = {t: wide.task(t).mean_wcet() for t in wide.task_ids()}
        m = ResourceAwareAdaptL(AdaptiveParams(k_l=0.5, c_thres=0.0))
        platform = identical_platform(4)
        state = m.prepare(wide, est, platform)
        # x: peer y shares db (full weight 1), z contends for procs (1/m)
        expected_x = 20.0 * (1.0 + 0.5 * (1.0 / 4 + 1.0))
        assert state.weights["x"] == pytest.approx(expected_x)
        # z: both x and y are plain processor contenders
        expected_z = 20.0 * (1.0 + 0.5 * (2.0 / 4))
        assert state.weights["z"] == pytest.approx(expected_z)

    def test_end_to_end_with_edf(self, wide):
        platform = identical_platform(3)
        a = distribute_deadlines(wide, platform, ResourceAwareAdaptL())
        s = schedule_edf(wide, platform, a)
        assert s.feasible
        assert validate_schedule(s, wide, platform, a) == []
        # resource exclusion held
        x, y = s.entry("x"), s.entry("y")
        assert x.finish <= y.start + 1e-9 or y.finish <= x.start + 1e-9
