"""Unit tests for WCET estimation strategies (§5.3, eqs. 9–11)."""

import pytest

from repro.core import (
    WCET_AVG,
    WCET_MAX,
    WCET_MIN,
    estimate_map,
    get_estimator,
)
from repro.errors import EligibilityError
from repro.graph import Task


@pytest.fixture
def task():
    return Task(id="t", wcet={"e1": 10.0, "e2": 20.0, "e3": 30.0})


class TestStrategies:
    def test_avg_eq9(self, task):
        assert WCET_AVG.estimate(task) == 20.0

    def test_max_eq10(self, task):
        assert WCET_MAX.estimate(task) == 30.0

    def test_min_eq11(self, task):
        assert WCET_MIN.estimate(task) == 10.0


class TestPlatformAwareness:
    def test_excludes_uninstantiated_classes(self, task, hetero_platform):
        # hetero_platform instantiates fast/slow only; the task is only
        # eligible on e1..e3 -> no usable class.
        with pytest.raises(EligibilityError):
            WCET_AVG.estimate(task, hetero_platform)

    def test_uses_only_platform_classes(self, hetero_platform):
        t = Task(id="t", wcet={"fast": 10.0, "slow": 20.0, "gpu": 90.0})
        # gpu is not on the platform, so it must not enter the average.
        assert WCET_AVG.estimate(t, hetero_platform) == 15.0
        assert WCET_MAX.estimate(t, hetero_platform) == 20.0


class TestRegistry:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("WCET-AVG", WCET_AVG),
            ("wcet-max", WCET_MAX),
            ("MIN", WCET_MIN),
        ],
    )
    def test_lookup(self, name, expected):
        assert get_estimator(name) is expected

    def test_instance_passthrough(self):
        assert get_estimator(WCET_MAX) is WCET_MAX

    def test_unknown_rejected(self):
        with pytest.raises(EligibilityError):
            get_estimator("WCET-MEDIAN")


class TestEstimateMap:
    def test_covers_all_tasks(self, hetero_graph):
        est = estimate_map(hetero_graph, "WCET-AVG")
        assert set(est) == {"a", "b", "c"}
        assert est["a"] == 10.0
        assert est["c"] == 10.0

    def test_strategy_changes_values(self, hetero_graph):
        assert estimate_map(hetero_graph, "WCET-MAX")["a"] == 12.0
        assert estimate_map(hetero_graph, "WCET-MIN")["a"] == 8.0
