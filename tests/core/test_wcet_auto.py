"""Unit tests for the WCET-AUTO strategy (§6.4 operationalized)."""

import pytest

from repro.core import WCET_AUTO, WCET_AVG, WCET_MAX, WcetAuto, estimate_map, get_estimator
from repro.errors import EligibilityError
from repro.graph import GraphBuilder
from repro.rng import make_rng
from repro.workload import WorkloadParams, generate_task_graph


def uniform_graph():
    """All execution times identical: spread 0."""
    return (
        GraphBuilder()
        .task("a", {"e1": 20.0, "e2": 20.0})
        .task("b", {"e1": 20.0, "e2": 20.0})
        .edge("a", "b")
        .build()
    )


def spread_graph():
    """Wildly varying execution times: spread >> 1."""
    return (
        GraphBuilder()
        .task("a", {"e1": 2.0, "e2": 6.0})
        .task("b", {"e1": 30.0, "e2": 60.0})
        .edge("a", "b")
        .build()
    )


class TestSpreadMeasure:
    def test_zero_for_uniform(self):
        assert WcetAuto.spread(uniform_graph()) == 0.0

    def test_large_for_spread(self):
        assert WcetAuto.spread(spread_graph()) > 1.0

    def test_tracks_etd(self):
        rng = make_rng(0)
        narrow = generate_task_graph(
            WorkloadParams(m=3, etd=0.0), rng, ["e1", "e2"]
        )
        wide = generate_task_graph(
            WorkloadParams(m=3, etd=1.0), rng, ["e1", "e2"]
        )
        assert WcetAuto.spread(narrow) < WcetAuto.spread(wide)

    def test_empty_graph_rejected(self):
        from repro.graph import TaskGraph

        with pytest.raises(EligibilityError):
            WcetAuto.spread(TaskGraph())


class TestDelegation:
    def test_uniform_delegates_to_max(self):
        g = (
            GraphBuilder()
            .task("a", {"e1": 18.0, "e2": 22.0})
            .build()
        )
        est = estimate_map(g, WCET_AUTO)
        assert est["a"] == WCET_MAX.estimate(g.task("a"))

    def test_wide_spread_delegates_to_avg(self):
        g = spread_graph()
        est = estimate_map(g, WCET_AUTO)
        assert est["a"] == WCET_AVG.estimate(g.task("a"))
        assert est["b"] == WCET_AVG.estimate(g.task("b"))

    def test_threshold_configurable(self):
        g = spread_graph()
        lenient = WcetAuto(spread_threshold=100.0)  # never switches
        est = lenient.estimate_graph(g)
        assert est["b"] == WCET_MAX.estimate(g.task("b"))

    def test_per_task_fallback_is_max(self):
        t = uniform_graph().task("a")
        assert WCET_AUTO.estimate(t) == 20.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(EligibilityError):
            WcetAuto(spread_threshold=0.0)


class TestIntegration:
    def test_registry(self):
        assert get_estimator("WCET-AUTO") is WCET_AUTO
        assert get_estimator("auto") is WCET_AUTO

    def test_distribution_pipeline(self, uni3):
        rng = make_rng(5)
        g = generate_task_graph(WorkloadParams(m=3), rng, ["default"])
        from repro.core import distribute_deadlines
        from repro.sched import schedule_edf, validate_schedule

        a = distribute_deadlines(g, uni3, "ADAPT-L", estimator="WCET-AUTO")
        assert a.estimator_name == "WCET-AUTO"
        s = schedule_edf(g, uni3, a)
        assert validate_schedule(s, g, uni3, a) == []

    def test_trial_config_accepts_auto(self):
        from repro.experiments import TrialConfig, run_trial

        fast = WorkloadParams(m=3, n_tasks_range=(12, 16), depth_range=(4, 6))
        out = run_trial(
            TrialConfig(workload=fast, estimator="WCET-AUTO"), seed=1
        )
        assert isinstance(out.success, bool)
