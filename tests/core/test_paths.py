"""Unit tests for the windowed critical-path search (§4.4 step 3)."""

import pytest

from repro.core import PureMetric, find_critical_path
from repro.core.metrics import MetricState
from repro.graph import GraphBuilder


def state_for(weights):
    return MetricState("PURE", dict(weights))


@pytest.fixture
def forked():
    """s -> {a1 -> a2, b} -> t  (heavy chain via a1/a2)."""
    return (
        GraphBuilder()
        .task("s", 5).task("a1", 20).task("a2", 20).task("b", 10).task("t", 5)
        .edge("s", "a1").edge("a1", "a2").edge("a2", "t")
        .edge("s", "b").edge("b", "t")
        .build()
    )


class TestBasicSearch:
    def test_full_graph_picks_heaviest_route(self, forked):
        weights = {t: forked.task(t).mean_wcet() for t in forked.task_ids()}
        cand = find_critical_path(
            forked,
            set(forked.task_ids()),
            arrivals={"s": 0.0},
            deadlines={"t": 100.0},
            metric=PureMetric(),
            state=state_for(weights),
        )
        assert cand is not None
        assert list(cand.path) == ["s", "a1", "a2", "t"]
        assert cand.window == 100.0
        # R = (100 - 50) / 4
        assert cand.ratio == pytest.approx(12.5)

    def test_empty_active_returns_none(self, forked):
        assert (
            find_critical_path(
                forked, set(), {}, {}, PureMetric(), state_for({})
            )
            is None
        )

    def test_single_pinned_task_is_its_own_path(self, forked):
        weights = {t: forked.task(t).mean_wcet() for t in forked.task_ids()}
        cand = find_critical_path(
            forked,
            {"b"},
            arrivals={"b": 10.0},
            deadlines={"b": 40.0},
            metric=PureMetric(),
            state=state_for(weights),
        )
        assert list(cand.path) == ["b"]
        assert cand.window == 30.0


class TestWindowSelection:
    def test_tighter_window_wins(self, forked):
        # Two heads: one with a generous window, one squeezed.
        weights = {t: 10.0 for t in forked.task_ids()}
        cand = find_critical_path(
            forked,
            {"a1", "a2", "b", "t"},
            arrivals={"a1": 0.0, "b": 0.0},
            deadlines={"t": 200.0, "b": 12.0},
            metric=PureMetric(),
            state=state_for(weights),
        )
        # b alone: R = (12 - 10)/1 = 2; chains to t have R >> 2.
        assert list(cand.path) == ["b"]

    def test_negative_window_is_most_critical(self, forked):
        weights = {t: 10.0 for t in forked.task_ids()}
        cand = find_critical_path(
            forked,
            {"a1", "b"},
            arrivals={"a1": 50.0, "b": 0.0},
            deadlines={"a1": 40.0, "b": 100.0},
            metric=PureMetric(),
            state=state_for(weights),
        )
        assert list(cand.path) == ["a1"]
        assert cand.window == -10.0


class TestPinnedInteriors:
    def test_path_may_pass_through_pinned_arrival(self, forked):
        # a2 has a pinned arrival (some predecessor assigned earlier);
        # the search must still route s-chains through it.
        weights = {t: forked.task(t).mean_wcet() for t in forked.task_ids()}
        cand = find_critical_path(
            forked,
            set(forked.task_ids()),
            arrivals={"s": 0.0, "a2": 30.0},
            deadlines={"t": 100.0},
            metric=PureMetric(),
            state=state_for(weights),
        )
        assert list(cand.path) == ["s", "a1", "a2", "t"]

    def test_path_may_pass_through_pinned_deadline(self, forked):
        weights = {t: forked.task(t).mean_wcet() for t in forked.task_ids()}
        cand = find_critical_path(
            forked,
            set(forked.task_ids()),
            arrivals={"s": 0.0},
            deadlines={"a1": 60.0, "t": 100.0},
            metric=PureMetric(),
            state=state_for(weights),
        )
        # a1's loose pin makes [s, a1] a candidate (R = 17.5) but the
        # heavy chain to t (R = 8.75) is more critical and passes
        # through the pinned task.
        assert cand.path[-1] == "t"
        assert "a1" in cand.path

    def test_tight_interior_pin_candidate_wins(self, forked):
        weights = {t: forked.task(t).mean_wcet() for t in forked.task_ids()}
        cand = find_critical_path(
            forked,
            set(forked.task_ids()),
            arrivals={"s": 0.0},
            deadlines={"a1": 30.0, "t": 100.0},
            metric=PureMetric(),
            state=state_for(weights),
        )
        # Now [s, a1] has R = (30 - 25)/2 = 2.5, tighter than any chain
        # to t, so the pinned-deadline candidate is selected.
        assert list(cand.path) == ["s", "a1"]

    def test_candidate_ending_at_interior_pin_exists(self, forked):
        # With a very tight pin on a1, the path ending there must win.
        weights = {t: forked.task(t).mean_wcet() for t in forked.task_ids()}
        cand = find_critical_path(
            forked,
            set(forked.task_ids()),
            arrivals={"s": 0.0},
            deadlines={"a1": 10.0, "t": 500.0},
            metric=PureMetric(),
            state=state_for(weights),
        )
        assert list(cand.path) == ["s", "a1"]


class TestDeterminism:
    def test_tie_break_is_stable(self, diamond):
        weights = {t: 10.0 for t in diamond.task_ids()}
        results = [
            find_critical_path(
                diamond,
                set(diamond.task_ids()),
                arrivals={"top": 0.0},
                deadlines={"bottom": 100.0},
                metric=PureMetric(),
                state=state_for(weights),
            ).path
            for _ in range(5)
        ]
        assert len(set(results)) == 1
        # left and right are symmetric: one is picked deterministically
        assert results[0][1] in ("left", "right")
