"""Unit tests for DeadlineAssignment and its invariants (§4.1–4.2)."""

import pytest

from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.errors import DistributionError


def manual(windows):
    return DeadlineAssignment(
        windows={
            tid: TaskWindow(a, d, a + d) for tid, (a, d) in windows.items()
        }
    )


class TestAccessors:
    def test_window_queries(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        w = a.window("b")
        assert w.arrival == a.arrival("b")
        assert w.length == pytest.approx(a.relative_deadline("b"))
        assert "b" in a and len(a) == 3

    def test_unassigned_task_raises(self):
        with pytest.raises(DistributionError):
            manual({}).window("zzz")

    def test_laxity(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        est = {"a": 10.0, "b": 20.0, "c": 15.0}
        # PURE gives everyone laxity R = 15
        for tid in chain3.task_ids():
            assert a.laxity(tid, est) == pytest.approx(15.0)
        assert a.min_laxity(est) == pytest.approx(15.0)

    def test_min_laxity_empty_raises(self):
        with pytest.raises(DistributionError):
            manual({}).min_laxity({})


class TestViolations:
    def test_clean_assignment_passes(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "NORM")
        assert a.violations(chain3) == []
        a.verify(chain3)  # must not raise
        assert a.path_constraint_satisfied(chain3)

    def test_missing_task_detected(self, chain3):
        a = manual({"a": (0, 10), "b": (10, 20)})  # c missing
        assert any("no assigned window" in v for v in a.violations(chain3))

    def test_overlap_detected(self, chain3):
        a = manual({"a": (0, 30), "b": (20, 20), "c": (40, 20)})
        msgs = a.violations(chain3)
        assert any("overlap" in v for v in msgs)

    def test_negative_deadline_detected(self, chain3):
        a = manual({"a": (0, 10), "b": (10, 20), "c": (30, 10)})
        a.windows["c"] = TaskWindow(30.0, -5.0, 25.0)
        assert any("negative" in v for v in a.violations(chain3))

    def test_phasing_violation_detected(self, uni2):
        from repro.graph import GraphBuilder

        g = (
            GraphBuilder()
            .task("a", 10, phasing=5.0).task("b", 10)
            .edge("a", "b").e2e("a", "b", 50)
            .build()
        )
        a = manual({"a": (0, 10), "b": (10, 10)})  # starts before phasing
        assert any("phasing" in v for v in a.violations(g))

    def test_e2e_bound_violation_detected(self, chain3):
        a = manual({"a": (0, 30), "b": (30, 30), "c": (60, 40)})  # D_c = 100 > 90
        assert any("E-T-E bound" in v for v in a.violations(chain3))

    def test_verify_raises_with_summary(self, chain3):
        a = manual({"a": (0, 30), "b": (20, 20), "c": (40, 60)})
        with pytest.raises(DistributionError):
            a.verify(chain3)


class TestSerialization:
    def test_round_trip(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "ADAPT-L")
        b = DeadlineAssignment.from_dict(a.to_dict())
        assert b.metric_name == a.metric_name
        assert b.degenerate == a.degenerate
        assert b.paths == a.paths
        for tid in chain3.task_ids():
            assert b.window(tid) == a.window(tid)
