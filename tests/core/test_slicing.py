"""Unit tests for Algorithm SLICING (Fig. 1) and boundary projection."""

import pytest

from repro.core import distribute_deadlines
from repro.core.slicing import _project_boundaries
from repro.errors import DistributionError
from repro.graph import GraphBuilder, chain_graph, fork_join_graph
from repro.system import identical_platform


class TestChainDistribution:
    """On a pure chain every metric's arithmetic is exactly checkable."""

    def test_pure_equal_share(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        # R = (90 - 45)/3 = 15 -> d = c + 15
        assert a.relative_deadline("a") == pytest.approx(25.0)
        assert a.relative_deadline("b") == pytest.approx(35.0)
        assert a.relative_deadline("c") == pytest.approx(30.0)
        assert a.arrival("a") == 0.0
        assert a.arrival("b") == pytest.approx(25.0)
        assert a.absolute_deadline("c") == pytest.approx(90.0)

    def test_norm_proportional_share(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "NORM")
        # R = (90-45)/45 = 1 -> d = 2c
        assert a.relative_deadline("a") == pytest.approx(20.0)
        assert a.relative_deadline("b") == pytest.approx(40.0)
        assert a.relative_deadline("c") == pytest.approx(30.0)

    def test_chain_adaptl_equals_pure(self, chain3, uni2):
        # Chains have empty parallel sets: ADAPT-L degenerates to PURE.
        pure = distribute_deadlines(chain3, uni2, "PURE")
        adl = distribute_deadlines(chain3, uni2, "ADAPT-L")
        for tid in chain3.task_ids():
            assert adl.relative_deadline(tid) == pytest.approx(
                pure.relative_deadline(tid)
            )

    def test_windows_chain_contiguously(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        assert a.absolute_deadline("a") == a.arrival("b")
        assert a.absolute_deadline("b") == a.arrival("c")


class TestInvariants:
    @pytest.mark.parametrize("metric", ["PURE", "NORM", "ADAPT-G", "ADAPT-L"])
    def test_no_violations_on_fork_join(self, metric, uni2):
        g = fork_join_graph(
            [[10, 20], [30], [5, 5, 5]], e2e_deadline=150.0
        )
        a = distribute_deadlines(g, uni2, metric)
        assert not a.degenerate
        assert a.violations(g) == []

    def test_every_task_gets_a_window(self, diamond, uni2):
        a = distribute_deadlines(diamond, uni2, "PURE")
        assert set(a.windows) == set(diamond.task_ids())

    def test_provenance_recorded(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "ADAPT-L", estimator="WCET-MAX")
        assert a.metric_name == "ADAPT-L"
        assert a.estimator_name == "WCET-MAX"
        assert a.paths  # the selected paths are traced

    def test_phased_input_starts_at_phasing(self, uni2):
        g = (
            GraphBuilder()
            .task("a", 10, phasing=5.0).task("b", 10)
            .edge("a", "b").e2e("a", "b", 50)
            .build()
        )
        a = distribute_deadlines(g, uni2, "PURE")
        assert a.arrival("a") == 5.0
        # output deadline bound = phasing + D = 55
        assert a.absolute_deadline("b") == pytest.approx(55.0)


class TestDegenerateCases:
    def test_infeasible_window_shows_negative_laxity(self, uni2):
        # Window below the workload but shares stay positive: not
        # structurally degenerate, yet laxity exposes the infeasibility.
        g = chain_graph([30, 30, 30], e2e_deadline=10.0)
        a = distribute_deadlines(g, uni2, "PURE")
        est = {tid: 30.0 for tid in g.task_ids()}
        assert a.min_laxity(est) < 0.0
        for tid in g.task_ids():
            assert a.relative_deadline(tid) >= 0.0

    def test_negative_share_flags_degenerate(self, uni2):
        # Mixed sizes under an impossible window: PURE's equal share
        # drives the small task's deadline negative -> clamp + flag.
        g = chain_graph([5, 50], e2e_deadline=10.0)
        a = distribute_deadlines(g, uni2, "PURE")
        assert a.degenerate
        for tid in g.task_ids():
            assert a.relative_deadline(tid) >= 0.0

    def test_missing_e2e_deadline_raises(self, uni2):
        g = chain_graph([10, 10])  # no deadline attached
        with pytest.raises(DistributionError):
            distribute_deadlines(g, uni2, "PURE")

    def test_empty_graph_raises(self, uni2):
        from repro.graph import TaskGraph
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            distribute_deadlines(TaskGraph(), uni2, "PURE")


class TestMultiPath:
    def test_diamond_branches_fit_between_spine(self, diamond, uni2):
        a = distribute_deadlines(diamond, uni2, "PURE")
        assert a.violations(diamond) == []
        # Both branches must sit inside [D_top, a_bottom].
        for side in ("left", "right"):
            assert a.arrival(side) >= a.absolute_deadline("top") - 1e-9
            assert a.absolute_deadline(side) <= a.arrival("bottom") + 1e-9

    def test_sandwiched_bypass_gets_room(self, uni2):
        # s -> x -> t plus shortcut s -> t: x must fit between the
        # boundaries even though s and t may land in one path first.
        g = (
            GraphBuilder()
            .task("s", 10).task("x", 10).task("t", 10)
            .edge("s", "x").edge("x", "t").edge("s", "t")
            .e2e("s", "t", 90)
            .build()
        )
        a = distribute_deadlines(g, uni2, "PURE")
        assert a.violations(g) == []
        assert a.relative_deadline("x") > 0.0


class TestBoundaryProjection:
    def test_unconstrained_keeps_shares(self):
        b, ok = _project_boundaries(
            ("a", "b"), 0.0, 30.0, [10.0, 20.0], {}, {}
        )
        assert ok
        assert b == [0.0, 10.0, 30.0]

    def test_interior_arrival_pin_raises_boundary(self):
        b, ok = _project_boundaries(
            ("a", "b"), 0.0, 30.0, [10.0, 20.0], {"b": 15.0}, {}
        )
        assert ok
        assert b[1] == 15.0  # b cannot arrive before its pin

    def test_interior_deadline_pin_caps_boundary(self):
        b, ok = _project_boundaries(
            ("a", "b"), 0.0, 30.0, [20.0, 10.0], {}, {"a": 12.0}
        )
        assert ok
        assert b[1] == 12.0  # a must finish by its pin

    def test_negative_share_clamped_and_flagged(self):
        b, ok = _project_boundaries(
            ("a", "b"), 0.0, 10.0, [-5.0, 15.0], {}, {}
        )
        assert not ok
        assert b[0] == 0.0 and b[2] == 10.0
        assert b[1] >= 0.0

    def test_negative_window_collapses_monotonically(self):
        b, ok = _project_boundaries(
            ("a", "b"), 20.0, 10.0, [5.0, 5.0], {}, {}
        )
        assert not ok
        assert b[0] <= b[1] <= b[2]

    def test_conflicting_pins_flagged(self):
        # arrival pin of b after deadline pin of a: infeasible sandwich
        b, ok = _project_boundaries(
            ("a", "b"), 0.0, 30.0, [15.0, 15.0], {"b": 25.0}, {"a": 5.0}
        )
        assert not ok
        assert b[0] <= b[1] <= b[2]

    def test_boundaries_always_monotone(self):
        b, _ = _project_boundaries(
            ("a", "b", "c"),
            0.0,
            10.0,
            [30.0, -20.0, 0.0],
            {"b": 9.0},
            {"b": 2.0},
        )
        assert all(x <= y + 1e-9 for x, y in zip(b, b[1:]))
