"""Unit tests for the critical-path metrics (§4.5, eqs. 2–8)."""

import pytest

from repro.core import (
    METRIC_NAMES,
    AdaptGMetric,
    AdaptLMetric,
    AdaptiveParams,
    NormMetric,
    PureMetric,
    get_metric,
    virtual_times_global,
    virtual_times_local,
)
from repro.errors import MetricError
from repro.graph import GraphBuilder, chain_graph
from repro.system import identical_platform


@pytest.fixture
def est():
    return {"a": 10.0, "b": 20.0, "c": 30.0}


@pytest.fixture
def chain():
    g = chain_graph([10.0, 20.0, 30.0])
    # rename to a/b/c for readability via a fresh build
    return (
        GraphBuilder()
        .task("a", 10).task("b", 20).task("c", 30)
        .edge("a", "b").edge("b", "c")
        .e2e("a", "c", 120)
        .build()
    )


class TestNorm:
    def test_ratio_eq2(self, chain, est):
        m = NormMetric()
        state = m.prepare(chain, est, identical_platform(2))
        # R = (120 - 60) / 60 = 1.0
        assert m.ratio(120.0, ["a", "b", "c"], state) == pytest.approx(1.0)

    def test_deadlines_eq3_proportional(self, chain, est):
        m = NormMetric()
        state = m.prepare(chain, est, identical_platform(2))
        d = m.deadlines(120.0, ["a", "b", "c"], state)
        assert d == {"a": 20.0, "b": 40.0, "c": 60.0}
        assert sum(d.values()) == pytest.approx(120.0)

    def test_zero_workload_rejected(self, chain):
        m = NormMetric()
        state = m.prepare(chain, {"a": 1.0, "b": 1.0, "c": 1.0},
                          identical_platform(2))
        with pytest.raises(MetricError):
            m.ratio(10.0, [], state)


class TestPure:
    def test_ratio_eq4(self, chain, est):
        m = PureMetric()
        state = m.prepare(chain, est, identical_platform(2))
        # R = (120 - 60) / 3 = 20
        assert m.ratio(120.0, ["a", "b", "c"], state) == pytest.approx(20.0)

    def test_deadlines_eq5_equal_share(self, chain, est):
        m = PureMetric()
        state = m.prepare(chain, est, identical_platform(2))
        d = m.deadlines(120.0, ["a", "b", "c"], state)
        assert d == {"a": 30.0, "b": 40.0, "c": 50.0}
        assert sum(d.values()) == pytest.approx(120.0)

    def test_negative_laxity_passthrough(self, chain, est):
        # Window below the workload: R < 0, shares may dip below c̄.
        m = PureMetric()
        state = m.prepare(chain, est, identical_platform(2))
        d = m.deadlines(30.0, ["a", "b", "c"], state)
        assert sum(d.values()) == pytest.approx(30.0)
        assert d["a"] == pytest.approx(0.0)


class TestVirtualTimes:
    def test_eq6_global(self):
        est = {"small": 10.0, "big": 30.0}
        virt = virtual_times_global(
            est, xi=4.0, m=2, k_g=1.5, c_thres=20.0
        )
        assert virt["small"] == 10.0  # below threshold: untouched
        assert virt["big"] == pytest.approx(30.0 * (1 + 1.5 * 4.0 / 2))

    def test_eq6_threshold_is_inclusive(self):
        virt = virtual_times_global(
            {"t": 20.0}, xi=1.0, m=1, k_g=1.0, c_thres=20.0
        )
        assert virt["t"] == pytest.approx(40.0)  # c̄ >= c_thres inflates

    def test_eq8_local(self):
        est = {"a": 30.0, "b": 30.0}
        virt = virtual_times_local(
            est,
            parallel_set_sizes={"a": 6, "b": 0},
            m=3,
            k_l=0.5,
            c_thres=20.0,
        )
        assert virt["a"] == pytest.approx(30.0 * (1 + 0.5 * 6 / 3))
        assert virt["b"] == pytest.approx(30.0)  # no parallelism, no surplus

    def test_m_must_be_positive(self):
        with pytest.raises(MetricError):
            virtual_times_global({}, xi=1.0, m=0, k_g=1.0, c_thres=1.0)


class TestAdaptiveParams:
    def test_threshold_from_factor(self):
        p = AdaptiveParams(c_thres_factor=1.0)
        assert p.threshold({"a": 10.0, "b": 30.0}) == pytest.approx(20.0)

    def test_absolute_threshold_overrides(self):
        p = AdaptiveParams(c_thres=5.0, c_thres_factor=99.0)
        assert p.threshold({"a": 10.0}) == 5.0

    def test_empty_estimates_rejected(self):
        with pytest.raises(MetricError):
            AdaptiveParams().threshold({})


class TestAdaptG:
    def test_prepare_uses_graph_parallelism(self, chain, est):
        # chain: xi = 1, so surplus = k_g * 1 / m
        m = AdaptGMetric(AdaptiveParams(k_g=1.5, c_thres=15.0))
        state = m.prepare(chain, est, identical_platform(3))
        assert state.weights["a"] == 10.0  # below threshold
        assert state.weights["b"] == pytest.approx(20.0 * 1.5)
        assert state.weights["c"] == pytest.approx(30.0 * 1.5)

    def test_deadlines_use_virtual_times(self, chain, est):
        m = AdaptGMetric(AdaptiveParams(k_g=1.5, c_thres=15.0))
        state = m.prepare(chain, est, identical_platform(3))
        d = m.deadlines(120.0, ["a", "b", "c"], state)
        assert sum(d.values()) == pytest.approx(120.0)
        # inflated tasks keep their surplus ordering
        assert d["c"] > d["b"] > d["a"]


class TestAdaptL:
    def test_chain_has_no_surplus(self, chain, est):
        # Parallel sets are empty on a chain: ADAPT-L == PURE weights.
        m = AdaptLMetric(AdaptiveParams(k_l=0.2, c_thres=0.0))
        state = m.prepare(chain, est, identical_platform(2))
        assert state.weights == est

    def test_diamond_branches_get_surplus(self, diamond):
        est = {t: 10.0 for t in diamond.task_ids()}
        m = AdaptLMetric(AdaptiveParams(k_l=0.6, c_thres=0.0))
        state = m.prepare(diamond, est, identical_platform(2))
        # |Psi| = 1 for left/right, 0 for top/bottom
        assert state.weights["left"] == pytest.approx(10.0 * (1 + 0.6 / 2))
        assert state.weights["top"] == 10.0


class TestRegistry:
    def test_names(self):
        assert METRIC_NAMES == ("PURE", "NORM", "ADAPT-G", "ADAPT-L")

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("PURE", PureMetric),
            ("norm", NormMetric),
            ("adapt-g", AdaptGMetric),
            ("ADAPT_L", AdaptLMetric),
            ("adaptl", AdaptLMetric),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(get_metric(name), cls)

    def test_params_forwarded(self):
        m = get_metric("ADAPT-G", AdaptiveParams(k_g=9.0))
        assert m.params.k_g == 9.0

    def test_instance_passthrough(self):
        m = PureMetric()
        assert get_metric(m) is m

    def test_unknown_rejected(self):
        with pytest.raises(MetricError):
            get_metric("MAGIC")
