"""Unit tests for window quantization (§3.1 discrete time units)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.errors import DistributionError
from repro.system import identical_platform

from ..property.strategies import dag_with_deadline


class TestQuantized:
    def test_snaps_to_integers(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "ADAPT-L")
        q = a.quantized()
        for tid in chain3.task_ids():
            w = q.window(tid)
            assert w.arrival == int(w.arrival)
            assert w.absolute_deadline == int(w.absolute_deadline)
            assert w.relative_deadline >= 0.0

    def test_invariants_preserved(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "NORM")
        q = a.quantized()
        assert q.violations(chain3) == []

    def test_deadlines_never_move_later(self, diamond, uni2):
        a = distribute_deadlines(diamond, uni2, "PURE")
        q = a.quantized()
        for tid in diamond.task_ids():
            assert (
                q.absolute_deadline(tid) <= a.absolute_deadline(tid) + 1e-9
            )

    def test_custom_unit(self):
        a = DeadlineAssignment(
            windows={"x": TaskWindow(3.7, 6.0, 9.7)}
        )
        q = a.quantized(unit=0.5)
        assert q.arrival("x") == 3.5
        assert q.absolute_deadline("x") == 9.5

    def test_grid_values_stable(self):
        # values already on the grid must not move (epsilon guard)
        a = DeadlineAssignment(windows={"x": TaskWindow(3.0, 4.0, 7.0)})
        q = a.quantized()
        assert q.window("x") == a.window("x")

    def test_invalid_unit_rejected(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        with pytest.raises(DistributionError):
            a.quantized(unit=0.0)

    def test_provenance_kept(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "ADAPT-G")
        q = a.quantized()
        assert q.metric_name == "ADAPT-G"
        assert q.paths == a.paths


@given(dag_with_deadline(), st.sampled_from(["PURE", "NORM", "ADAPT-L"]))
@settings(max_examples=50, deadline=None)
def test_quantization_preserves_invariants(graph, metric):
    platform = identical_platform(2)
    a = distribute_deadlines(graph, platform, metric)
    q = a.quantized()
    for tid in graph.task_ids():
        w = q.window(tid)
        assert w.relative_deadline >= -1e-9
    if not a.degenerate:
        assert q.violations(graph) == []
