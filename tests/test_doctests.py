"""Run the doctest examples embedded in docstrings."""

import doctest

import repro.graph.builder


def test_builder_doctests():
    results = doctest.testmod(repro.graph.builder, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1  # the GraphBuilder example ran


def test_readme_quickstart_executes():
    """The README's quickstart block must stay runnable verbatim."""
    from pathlib import Path

    readme = Path(__file__).parent.parent / "README.md"
    text = readme.read_text()
    start = text.index("```python") + len("```python")
    end = text.index("```", start)
    code = text[start:end]
    namespace: dict = {}
    exec(compile(code, "<README quickstart>", "exec"), namespace)
    assert namespace["schedule"].feasible is not None
