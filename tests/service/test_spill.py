"""Tests for the service's persistent spill tier (``cache_dir``).

Pins the restart-warm contract: a service pointed at a store directory
writes every computed assignment through, so a *new* service over the
same directory serves the first repeat request from the store
(``cached: true``), and an LRU eviction only drops the memory copy.
Store counters must surface on ``/metrics``.
"""

from __future__ import annotations

import json

from repro.service import DeadlineAssignmentService

from .conftest import chain_request


def response_text(doc: dict) -> str:
    return json.dumps(doc["slices"], sort_keys=True)


class TestServiceSpill:
    def test_restart_starts_warm(self, tmp_path):
        request = chain_request()
        with DeadlineAssignmentService(cache_dir=tmp_path / "s") as first:
            cold = first.assign_dict(request)
            assert cold["cached"] is False
        with DeadlineAssignmentService(cache_dir=tmp_path / "s") as second:
            warm = second.assign_dict(request)
        assert warm["cached"] is True
        assert response_text(warm) == response_text(cold)
        assert warm["digest"] == cold["digest"]

    def test_eviction_restores_from_spill(self, tmp_path):
        alpha = chain_request(wcets=(10, 20, 15))
        beta = chain_request(wcets=(5, 5, 5))
        with DeadlineAssignmentService(
            cache_size=1, cache_dir=tmp_path / "s"
        ) as service:
            first = service.assign_dict(alpha)
            service.assign_dict(beta)  # evicts alpha from the LRU tier
            assert len(service.cache) == 1
            again = service.assign_dict(alpha)
            assert again["cached"] is True  # restored, not recomputed
            assert response_text(again) == response_text(first)
            assert service.store.stats().hits >= 1

    def test_store_metrics_exposed(self, tmp_path):
        request = chain_request()
        with DeadlineAssignmentService(cache_dir=tmp_path / "s") as service:
            service.assign_dict(request)
            text = service.metrics.render()
        lines = dict(
            line.split(" ", 1)
            for line in text.splitlines()
            if line.startswith("repro_store_") and not line.startswith("# ")
        )
        # The cold request missed the store once, then wrote through.
        assert int(lines["repro_store_misses_total"]) >= 1
        assert int(lines["repro_store_appends_total"]) == 1
        assert int(lines["repro_store_records"]) == 1
        assert int(lines["repro_store_bytes"]) > 0

    def test_no_cache_dir_means_no_store_series(self):
        with DeadlineAssignmentService() as service:
            assert service.store is None
            assert "repro_store_" not in service.metrics.render()
