"""Unit tests for the service request/response surface."""

import math

import pytest

from repro.errors import (
    MetricError,
    ReproError,
    SerializationError,
    ValidationError,
)
from repro.online import AdmissionDecision
from repro.service import (
    request_digest,
    request_from_dict,
    response_from_assignment,
    response_to_dict,
)
from repro.core.slicing import distribute_deadlines
from repro.graph import chain_graph
from repro.system import identical_platform

from .conftest import chain_request


class TestRequestParsing:
    def test_minimal_request_defaults(self, request_doc):
        req = request_from_dict(request_doc)
        assert req.metric == "ADAPT-L"
        assert req.estimator == "WCET-AVG"
        assert not req.admit and req.params is None
        assert req.graph.n_tasks == 3
        assert req.platform.m == 2

    def test_metric_and_estimator_are_canonicalized(self):
        req = request_from_dict(
            chain_request(metric="adapt_g", estimator="avg")
        )
        assert req.metric == "ADAPT-G"
        assert req.estimator == "WCET-AVG"

    def test_params_accepted(self):
        req = request_from_dict(
            chain_request(params={"k_l": 0.3, "c_thres": 12.0})
        )
        assert req.params.k_l == 0.3
        assert req.params.c_thres == 12.0

    def test_admit_request(self):
        req = request_from_dict(
            chain_request(
                admit=True, relative_deadline=90.0, arrival=5.0, app_id="a"
            )
        )
        assert req.admit and req.relative_deadline == 90.0
        assert req.arrival == 5.0 and req.app_id == "a"


class TestRequestValidation:
    def test_non_dict_rejected(self):
        with pytest.raises(ValidationError):
            request_from_dict([1, 2, 3])

    def test_unknown_key_rejected(self):
        with pytest.raises(ValidationError, match="bogus"):
            request_from_dict(chain_request(bogus=1))

    def test_missing_graph_rejected(self):
        doc = chain_request()
        del doc["graph"]
        with pytest.raises(ValidationError, match="graph"):
            request_from_dict(doc)

    def test_malformed_graph_document(self):
        doc = chain_request()
        doc["graph"] = {"format": "bogus/1"}
        with pytest.raises(SerializationError):
            request_from_dict(doc)

    def test_unknown_metric(self):
        with pytest.raises(MetricError):
            request_from_dict(chain_request(metric="SUPER"))

    def test_unknown_estimator(self):
        with pytest.raises(ReproError):
            request_from_dict(chain_request(estimator="WCET-MODE"))

    def test_unknown_params_key(self):
        with pytest.raises(ValidationError, match="k_z"):
            request_from_dict(chain_request(params={"k_z": 1.0}))

    def test_non_numeric_param(self):
        with pytest.raises(ValidationError):
            request_from_dict(chain_request(params={"k_l": "big"}))

    def test_admit_needs_relative_deadline(self):
        with pytest.raises(ValidationError, match="relative_deadline"):
            request_from_dict(chain_request(admit=True))

    def test_admit_rejects_nonpositive_deadline(self):
        with pytest.raises(ValidationError):
            request_from_dict(chain_request(admit=True, relative_deadline=0))

    def test_admission_fields_require_admit(self):
        with pytest.raises(ValidationError, match="admit"):
            request_from_dict(chain_request(arrival=1.0))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="finite"):
            request_from_dict(
                chain_request(admit=True, relative_deadline=float("inf"))
            )


class TestDigest:
    def test_digest_is_stable_and_content_addressed(self, request_doc):
        a = request_digest(request_from_dict(request_doc))
        b = request_digest(request_from_dict(chain_request()))
        assert a == b and len(a) == 64

    def test_spelling_does_not_change_digest(self):
        a = request_digest(request_from_dict(chain_request(metric="ADAPT-L")))
        b = request_digest(request_from_dict(chain_request(metric="adapt_l")))
        assert a == b

    def test_metric_changes_digest(self):
        a = request_digest(request_from_dict(chain_request(metric="PURE")))
        b = request_digest(request_from_dict(chain_request(metric="NORM")))
        assert a != b

    def test_params_change_digest(self):
        a = request_digest(request_from_dict(chain_request()))
        b = request_digest(
            request_from_dict(chain_request(params={"k_l": 0.9}))
        )
        assert a != b

    def test_workload_changes_digest(self):
        a = request_digest(request_from_dict(chain_request()))
        b = request_digest(request_from_dict(chain_request(deadline=91.0)))
        c = request_digest(request_from_dict(chain_request(m=3)))
        assert len({a, b, c}) == 3

    def test_admission_fields_do_not_change_digest(self):
        a = request_digest(request_from_dict(chain_request()))
        b = request_digest(
            request_from_dict(
                chain_request(admit=True, relative_deadline=90.0)
            )
        )
        assert a == b


class TestResponse:
    def _assignment(self):
        graph = chain_graph([10, 20, 15])
        graph.set_uniform_e2e_deadline(90.0)
        return distribute_deadlines(graph, identical_platform(2), "ADAPT-L")

    def test_slices_sorted_and_faithful(self):
        assignment = self._assignment()
        response = response_from_assignment(assignment, "d" * 64)
        assert [s.task_id for s in response.slices] == ["t0", "t1", "t2"]
        for s in response.slices:
            w = assignment.windows[s.task_id]
            assert (s.arrival, s.absolute_deadline) == (
                w.arrival,
                w.absolute_deadline,
            )

    def test_dict_round_trip_fields(self):
        doc = response_to_dict(
            response_from_assignment(self._assignment(), "d" * 64, cached=True)
        )
        assert doc["format"] == "repro.assign-response/1"
        assert doc["cached"] is True
        assert doc["metric"] == "ADAPT-L"
        assert doc["estimator"] == "WCET-AVG"
        assert len(doc["slices"]) == 3
        assert "admission" not in doc

    def test_nan_response_time_is_omitted(self):
        decision = AdmissionDecision(False, "a", 0.0, reason="nope")
        doc = response_to_dict(
            response_from_assignment(
                self._assignment(), "d" * 64, admission=decision
            )
        )
        assert doc["admission"]["admitted"] is False
        assert "response_time" not in doc["admission"]
        assert not any(
            isinstance(v, float) and math.isnan(v)
            for v in doc["admission"].values()
        )
