"""Concurrency-layer tests: single-flight, sharded admission, backpressure.

These pin the service's parallel-load contracts:

* N concurrent identical misses run exactly ONE computation (the
  others coalesce onto the in-flight future);
* admissions serialize per platform digest only — a stalled controller
  never blocks another platform's admissions;
* generated admission app-ids never collide with caller-supplied ones,
  and the sequence advances only when the service generates;
* a full bounded queue sheds requests as HTTP 429 + ``Retry-After``;
* an HTTP/1.1 404 on a keep-alive connection drains the request body,
  so the next pipelined request still parses (desync regression).
"""

import http.client
import json
import threading
import time

import pytest

from repro.errors import ServiceOverloadError
from repro.service import DeadlineAssignmentService, create_server
from repro.system import identical_platform

from .conftest import chain_request


class GatedService(DeadlineAssignmentService):
    """Service whose computation counts calls and blocks on a gate."""

    def __init__(self, **kwargs) -> None:
        self.compute_calls: list = []
        self.compute_started = threading.Event()
        self.gate = threading.Event()
        super().__init__(**kwargs)

    def _compute(self, request):
        self.compute_calls.append(request)
        self.compute_started.set()
        assert self.gate.wait(10), "test gate was never opened"
        return super()._compute(request)


def _wait_until(predicate, timeout=5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class TestSingleFlight:
    def test_n_identical_requests_one_computation(self):
        svc = GatedService(batch_wait=0.0, workers=4)
        try:
            results, errors = [], []

            def worker():
                try:
                    results.append(svc.assign_dict(chain_request()))
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for t in threads:
                t.start()
            # All six are in: one leader computing (parked at the gate),
            # five followers waiting on its in-flight future.
            assert _wait_until(
                lambda: svc.metrics.singleflight_waits.total() == 5
            ), "followers never coalesced onto the leader"
            svc.gate.set()
            for t in threads:
                t.join(timeout=10)
            assert not errors
            assert len(results) == 6
            assert len(svc.compute_calls) == 1  # the whole point
            assert {
                json.dumps(r["slices"], sort_keys=True) for r in results
            } == {json.dumps(results[0]["slices"], sort_keys=True)}
            assert svc.metrics.assignments.value(source="computed") == 1.0
            assert svc.metrics.assignments.value(source="coalesced") == 5.0
            assert svc.metrics.cache_misses.total() == 6.0
        finally:
            svc.gate.set()
            svc.close()

    def test_leader_failure_propagates_to_followers(self):
        svc = GatedService(batch_wait=0.0, workers=2)

        def boom(request):
            svc.compute_started.set()
            assert svc.gate.wait(10)
            raise RuntimeError("computation exploded")

        svc.batcher._handler = boom  # fail inside the worker itself
        try:
            errors = []

            def worker():
                try:
                    svc.assign_dict(chain_request())
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(3)]
            for t in threads:
                t.start()
            assert _wait_until(
                lambda: svc.metrics.singleflight_waits.total() == 2
            )
            svc.gate.set()
            for t in threads:
                t.join(timeout=10)
            assert len(errors) == 3
            assert all("computation exploded" in str(e) for e in errors)
            assert svc.metrics.assignments.value(source="failed") == 3.0
            # Failures are not cached: the digest stays recomputable.
            assert len(svc.cache) == 0
        finally:
            svc.gate.set()
            svc.close()


class TestShardedAdmission:
    def test_platforms_admit_concurrently(self):
        svc = DeadlineAssignmentService(batch_wait=0.0)
        try:
            # First admissions create the two controllers.
            svc.assign_dict(
                chain_request(m=2, admit=True, relative_deadline=500.0)
            )
            svc.assign_dict(
                chain_request(m=3, admit=True, relative_deadline=500.0)
            )
            controller_a = svc.admission_controller(identical_platform(2))
            assert controller_a is not None
            blocked = threading.Event()
            release = threading.Event()
            original_submit = controller_a.submit

            def slow_submit(*args, **kwargs):
                blocked.set()
                assert release.wait(10)
                return original_submit(*args, **kwargs)

            controller_a.submit = slow_submit

            thread_a = threading.Thread(
                target=svc.assign_dict,
                args=(
                    chain_request(
                        m=2, admit=True, relative_deadline=500.0
                    ),
                ),
            )
            thread_a.start()
            assert blocked.wait(5)
            # Platform A's shard lock is held mid-admission.  Platform B
            # must still admit — with the old global lock this blocked.
            done_b = threading.Event()

            def admit_b():
                svc.assign_dict(
                    chain_request(m=3, admit=True, relative_deadline=500.0)
                )
                done_b.set()

            thread_b = threading.Thread(target=admit_b, daemon=True)
            thread_b.start()
            assert done_b.wait(5), (
                "platform-B admission queued behind platform A's lock"
            )
            release.set()
            thread_a.join(timeout=10)
            thread_b.join(timeout=10)
        finally:
            release.set()
            svc.close()

    def test_same_platform_admissions_stay_serialized(self):
        svc = DeadlineAssignmentService(batch_wait=0.0)
        try:
            docs = []

            def admit():
                docs.append(
                    svc.assign_dict(
                        chain_request(admit=True, relative_deadline=500.0)
                    )
                )

            threads = [threading.Thread(target=admit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert len(docs) == 4
            ids = [d["admission"]["app_id"] for d in docs]
            assert len(set(ids)) == 4  # no duplicate ids under races
        finally:
            svc.close()


class TestAppIdGeneration:
    def test_generated_ids_skip_caller_supplied_names(self):
        with DeadlineAssignmentService(batch_wait=0.0) as svc:
            doc1 = svc.assign_dict(
                chain_request(
                    admit=True, relative_deadline=500.0, app_id="app-1"
                )
            )
            assert doc1["admission"]["admitted"] is True
            # Auto-generation must not reuse the committed "app-1".
            doc2 = svc.assign_dict(
                chain_request(admit=True, relative_deadline=500.0)
            )
            assert doc2["admission"]["admitted"] is True
            assert doc2["admission"]["app_id"] == "app-2"

    def test_sequence_only_advances_when_generating(self):
        with DeadlineAssignmentService(batch_wait=0.0) as svc:
            svc.assign_dict(
                chain_request(
                    admit=True, relative_deadline=500.0, app_id="zebra"
                )
            )
            doc = svc.assign_dict(
                chain_request(admit=True, relative_deadline=500.0)
            )
            # The caller-supplied "zebra" consumed no sequence number.
            assert doc["admission"]["app_id"] == "app-1"


class TestBackpressureHTTP:
    @pytest.fixture
    def gated_server(self):
        service = GatedService(
            batch_wait=0.0, workers=1, batch_size=1, max_queue=1
        )
        server = create_server(port=0, service=service, retry_after=7)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"{host}:{port}", service
        service.gate.set()
        server.shutdown()
        server.server_close()
        service.close(timeout=5)
        thread.join(timeout=5)

    def test_overflow_is_429_with_retry_after(self, gated_server):
        addr, service = gated_server
        host, port = addr.rsplit(":", 1)

        def post(doc):
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            try:
                conn.request(
                    "POST", "/assign", body=json.dumps(doc).encode()
                )
                response = conn.getresponse()
                return response, json.loads(response.read())
            finally:
                conn.close()

        slow_result = {}

        def slow_post():
            response, body = post(chain_request())
            slow_result["status"] = response.status

        slow = threading.Thread(target=slow_post)
        slow.start()
        assert service.compute_started.wait(5)
        # The single worker is parked and the queue bound is reached: a
        # DISTINCT workload must be shed, not queued.
        response, body = post(chain_request(deadline=123.0))
        assert response.status == 429
        assert response.getheader("Retry-After") == "7"
        assert body["kind"] == "ServiceOverloadError"

        service.gate.set()
        slow.join(timeout=10)
        assert slow_result["status"] == 200

        metrics = self._scrape(host, int(port))
        assert "repro_overload_rejections_total 1" in metrics
        assert (
            'repro_request_errors_total{kind="ServiceOverloadError"} 1'
            in metrics
        )
        assert (
            'repro_requests_total{endpoint="assign",status="429"} 1'
            in metrics
        )

    @staticmethod
    def _scrape(host: str, port: int) -> str:
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/metrics")
            return conn.getresponse().read().decode()
        finally:
            conn.close()

    def test_engine_raises_typed_overload(self):
        svc = GatedService(
            batch_wait=0.0, workers=1, batch_size=1, max_queue=1
        )
        try:
            leader_error = []

            def leader():
                try:
                    svc.assign_dict(chain_request())
                except Exception as exc:  # pragma: no cover
                    leader_error.append(exc)

            thread = threading.Thread(target=leader)
            thread.start()
            assert svc.compute_started.wait(5)
            with pytest.raises(ServiceOverloadError):
                svc.assign_dict(chain_request(deadline=321.0))
            svc.gate.set()
            thread.join(timeout=10)
            assert not leader_error
        finally:
            svc.gate.set()
            svc.close()


class TestKeepAlive:
    @pytest.fixture
    def live_server(self):
        server = create_server(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield host, port
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=5)

    def test_404_with_body_does_not_desync_next_request(self, live_server):
        """Two requests, one connection: 404-with-body, then /assign.

        Regression: the 404 path replied without consuming the request
        body, so the unread bytes were parsed as the *next* request's
        start-line and the connection desynced.
        """
        host, port = live_server
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            bogus = json.dumps({"leftover": "bytes" * 100}).encode()
            conn.request("POST", "/not-a-route", body=bogus)
            response = conn.getresponse()
            assert response.status == 404
            response.read()  # finish the exchange, keep the connection

            conn.request(
                "POST",
                "/assign",
                body=json.dumps(chain_request()).encode(),
            )
            response = conn.getresponse()
            assert response.status == 200
            doc = json.loads(response.read())
            assert doc["format"] == "repro.assign-response/1"
        finally:
            conn.close()

    def test_pipelined_get_after_bad_post(self, live_server):
        host, port = live_server
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", "/nope", body=b'{"x": 1}')
            assert conn.getresponse().read() is not None
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read()) == {"status": "ok"}
        finally:
            conn.close()
