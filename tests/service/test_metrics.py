"""Unit tests for the in-process Prometheus-style metrics."""

import math

import pytest

from repro.service import Counter, LatencySummary, ServiceMetrics
from repro.service.metrics import render_prometheus


class TestCounter:
    def test_unlabelled_increment(self):
        c = Counter("x_total", "help")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0

    def test_labelled_children_are_independent(self):
        c = Counter("x_total", "help")
        c.inc(endpoint="assign", status="200")
        c.inc(endpoint="assign", status="400")
        c.inc(endpoint="assign", status="200")
        assert c.value(endpoint="assign", status="200") == 2.0
        assert c.value(endpoint="assign", status="400") == 1.0
        assert c.total() == 3.0

    def test_label_order_is_irrelevant(self):
        c = Counter("x_total", "help")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        c = Counter("x_total", "help")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_render_format(self):
        c = Counter("x_total", "Things counted.")
        c.inc(endpoint="assign", status="200")
        lines = c.render()
        assert lines[0] == "# HELP x_total Things counted."
        assert lines[1] == "# TYPE x_total counter"
        assert 'x_total{endpoint="assign",status="200"} 1' in lines

    def test_render_empty_counter_emits_zero(self):
        assert "x_total 0" in Counter("x_total", "h").render()


class TestLatencySummary:
    def test_quantiles_on_known_data(self):
        s = LatencySummary("lat", "h", window=100)
        for v in range(1, 101):  # 0.01 .. 1.00
            s.observe(v / 100.0)
        assert s.quantile(0.0) == pytest.approx(0.01)
        assert s.quantile(0.5) == pytest.approx(0.505)
        assert s.quantile(1.0) == pytest.approx(1.0)
        assert s.count == 100

    def test_window_slides(self):
        s = LatencySummary("lat", "h", window=4)
        for v in (10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            s.observe(v)
        assert s.quantile(1.0) == 1.0  # the 10s have left the window
        assert s.count == 7  # cumulative count keeps history

    def test_empty_summary_is_nan(self):
        assert math.isnan(LatencySummary("lat", "h").quantile(0.5))

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            LatencySummary("lat", "h").quantile(1.5)

    def test_render_has_quantiles_count_and_sum(self):
        s = LatencySummary("lat_seconds", "h")
        s.observe(0.25)
        text = "\n".join(s.render())
        assert 'lat_seconds{quantile="0.5"} 0.25' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.25" in text


class TestServiceMetrics:
    def test_hit_rate(self):
        m = ServiceMetrics()
        assert m.cache_hit_rate() == 0.0
        m.cache_hits.inc(3)
        m.cache_misses.inc()
        assert m.cache_hit_rate() == pytest.approx(0.75)

    def test_observe_batch(self):
        m = ServiceMetrics()
        m.observe_batch(4)
        m.observe_batch(1)
        assert m.batches.total() == 2.0
        assert m.batched_items.total() == 5.0

    def test_render_exposes_all_families(self):
        m = ServiceMetrics()
        m.requests.inc(endpoint="assign", status="200")
        m.assign_latency.observe(0.004)
        text = render_prometheus(m)
        for family in (
            "repro_requests_total",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_cache_hit_rate",
            "repro_assign_latency_seconds",
            "repro_batches_total",
            "repro_admissions_total",
        ):
            assert family in text
        for q in ("0.5", "0.95", "0.99"):
            assert f'quantile="{q}"' in text
        assert text.endswith("\n")
