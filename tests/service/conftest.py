"""Shared fixtures for the online-service tests."""

from __future__ import annotations

import pytest

from repro.graph import chain_graph, graph_to_dict
from repro.system import identical_platform
from repro.system.platform import platform_to_dict


def chain_request(
    wcets=(10, 20, 15), deadline=90.0, m=2, **extra
) -> dict:
    """A minimal valid ``POST /assign`` body over a chain graph."""
    graph = chain_graph(list(wcets))
    graph.set_uniform_e2e_deadline(deadline)
    doc = {
        "graph": graph_to_dict(graph),
        "platform": platform_to_dict(identical_platform(m)),
    }
    doc.update(extra)
    return doc


@pytest.fixture
def request_doc() -> dict:
    return chain_request()
