"""Unit tests for the content-addressed LRU assignment cache."""

import threading

import pytest

from repro.errors import ValidationError
from repro.service import AssignmentCache


class TestLru:
    def test_miss_then_hit(self):
        cache = AssignmentCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_eviction_order_is_least_recently_used(self):
        cache = AssignmentCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = AssignmentCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_len_and_clear(self):
        cache = AssignmentCache(maxsize=8)
        for i in range(5):
            cache.put(f"k{i}", i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 0  # counters survive, no lookups yet

    def test_keys_in_recency_order(self):
        cache = AssignmentCache(maxsize=4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ["b", "a"]

    def test_bad_maxsize(self):
        with pytest.raises(ValidationError):
            AssignmentCache(maxsize=0)


class TestThreadSafety:
    def test_concurrent_hammer_keeps_exact_counters(self):
        cache = AssignmentCache(maxsize=64)
        lookups_per_thread = 500
        threads = 8

        def worker(tid: int) -> None:
            for i in range(lookups_per_thread):
                key = f"{tid}-{i % 32}"
                if cache.get(key) is None:
                    cache.put(key, i)

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        stats = cache.stats()
        assert stats.lookups == threads * lookups_per_thread
        assert stats.size <= 64
