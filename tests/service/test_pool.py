"""Pooled-topology tests: worker pool, asyncio front end, backpressure.

The pooled service's correctness gate is *equivalence*: byte-identical
``/assign`` bodies and matching metric totals against the in-process
single server, plus the same 429/drain guarantees
``tests/service/test_concurrency.py`` pins for the thread path.
Workers are real spawned processes, so counts stay small — one or two
workers per fixture — to keep the suite fast on single-CPU hosts.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.errors import ServiceOverloadError
from repro.service import (
    DeadlineAssignmentService,
    PooledFrontend,
    WorkerPool,
    create_server,
)

from .conftest import chain_request


def distinct_body(i: int, **extra) -> bytes:
    doc = chain_request(
        wcets=(10 + i, 20 + 2 * i, 15 + i), deadline=200.0 + i, **extra
    )
    return json.dumps(doc).encode()


def post_assign(
    host: str, port: int, body: bytes, timeout: float = 60.0
) -> tuple[int, dict[str, str], bytes]:
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            "POST",
            "/assign",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            response.read(),
        )
    finally:
        conn.close()


@pytest.fixture(scope="module")
def pooled():
    """One 2-worker pooled front end shared by the equivalence tests."""
    frontend = PooledFrontend(WorkerPool(2, cache_size=256))
    frontend.start(timeout=120.0)
    yield frontend
    frontend.close(timeout=10.0)


class TestPooledEquivalence:
    """Pooled responses are byte-identical to the single process's."""

    def test_assign_bodies_bit_identical(self, pooled):
        service = DeadlineAssignmentService(cache_size=256)
        server = create_server("127.0.0.1", 0, service)
        single = threading.Thread(target=server.serve_forever, daemon=True)
        single.start()
        shost, sport = server.server_address[:2]
        phost, pport = pooled.address
        try:
            # Distinct workloads, a duplicate replay, an invalid
            # request, and an invalid-graph request — every branch of
            # the response contract.
            bodies = [distinct_body(i) for i in range(5)]
            bodies.append(bodies[0])  # duplicate: cached in both
            bad_graph = chain_request()
            bad_graph["graph"]["e2e_deadlines"] = []
            bodies.append(json.dumps(bad_graph).encode())
            bodies.append(b"{not json")
            for body in bodies:
                s_status, _, s_body = post_assign(shost, sport, body)
                p_status, _, p_body = post_assign(phost, pport, body)
                assert p_status == s_status
                assert p_body == s_body
        finally:
            server.shutdown()
            server.server_close()
            service.close(timeout=5.0)

    def test_healthz_and_unknown_path(self, pooled):
        host, port = pooled.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read()) == {"status": "ok"}
            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert response.status == 404
            assert json.loads(response.read()) == {
                "error": "unknown path '/nope'"
            }
        finally:
            conn.close()

    def test_keep_alive_pipelines_requests(self, pooled):
        """Many requests reuse one connection, including error replies."""
        host, port = pooled.address
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            digests = []
            for i in range(6):
                conn.request("POST", "/assign", body=distinct_body(i + 100))
                response = conn.getresponse()
                assert response.status == 200
                digests.append(json.loads(response.read())["digest"])
            # An error response must not poison the connection.
            conn.request("POST", "/assign", body=b"{broken")
            response = conn.getresponse()
            assert response.status == 400
            response.read()
            conn.request("POST", "/assign", body=distinct_body(100))
            response = conn.getresponse()
            assert response.status == 200
            doc = json.loads(response.read())
            assert doc["digest"] == digests[0]
            assert doc["cached"] is True
        finally:
            conn.close()

    def test_duplicate_burst_coalesces_in_front_end(self):
        """Concurrent identical bodies share one dispatch (single-flight).

        Uses its own slow 1-worker pool so the burst demonstrably
        overlaps the leader's computation — on a fast shared pool the
        duplicates could serialize into plain cache hits instead.
        """
        pool = WorkerPool(1, compute_delay=0.5)
        frontend = PooledFrontend(pool)
        frontend.start(timeout=120.0)
        host, port = frontend.address
        body = distinct_body(777)
        results: list[tuple[int, bytes]] = []
        lock = threading.Lock()

        def worker() -> None:
            status, _, payload = post_assign(host, port, body)
            with lock:
                results.append((status, payload))

        try:
            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)
            assert len(results) == 6
            assert {status for status, _ in results} == {200}
            assert len({payload for _, payload in results}) == 1
            waits = frontend.metrics.singleflight_waits.total()
            coalesced = frontend.metrics.assignments.value(
                source="coalesced"
            )
            # At least one request must have followed rather than
            # dispatched (exact counts depend on arrival interleaving).
            assert waits >= 1
            assert coalesced == waits
        finally:
            frontend.close(timeout=10.0)

    def test_metrics_totals_aggregate_across_processes(self, pooled):
        host, port = pooled.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            text = response.read().decode()
        finally:
            conn.close()
        series = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            series[name] = float(value)
        computed = series.get('repro_assignments_total{source="computed"}', 0)
        cache = series.get('repro_assignments_total{source="cache"}', 0)
        coalesced = series.get(
            'repro_assignments_total{source="coalesced"}', 0
        )
        failed = series.get('repro_assignments_total{source="failed"}', 0)
        hits = series.get("repro_cache_hits_total", 0)
        misses = series.get("repro_cache_misses_total", 0)
        # The single-process dashboard invariant must survive the
        # split across front end + workers.
        assert computed + cache + coalesced + failed == hits + misses
        assert hits == cache
        assert computed >= 1 and hits >= 1


class TestPooledBackpressure:
    """429 + Retry-After under saturation, without stranded futures."""

    def test_pool_submit_sheds_when_full(self):
        with WorkerPool(1, max_queue=1, compute_delay=0.5) as pool:
            pool.start(timeout=120.0)
            first = pool.submit(json.loads(distinct_body(0)))
            with pytest.raises(ServiceOverloadError):
                for i in range(1, 10):
                    pool.submit(json.loads(distinct_body(i)))
            assert first.result(timeout=60.0)["format"].startswith("repro.")

    def test_http_burst_returns_429_with_retry_after(self):
        pool = WorkerPool(1, max_queue=1, compute_delay=0.5)
        frontend = PooledFrontend(pool, retry_after=7)
        frontend.start(timeout=120.0)
        host, port = frontend.address
        results: list[tuple[int, dict[str, str]]] = []
        lock = threading.Lock()

        def worker(i: int) -> None:
            status, headers, _ = post_assign(
                host, port, distinct_body(i)
            )
            with lock:
                results.append((status, headers))

        try:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)
            statuses = sorted(status for status, _ in results)
            assert len(results) == 8
            assert 200 in statuses
            assert 429 in statuses
            assert set(statuses) <= {200, 429}
            for status, headers in results:
                if status == 429:
                    assert headers.get("retry-after") == "7"
            assert frontend.metrics.overloads.total() == statuses.count(429)
        finally:
            frontend.close(timeout=10.0)

    def test_drain_timeout_fails_stragglers_without_hanging(self):
        pool = WorkerPool(1, compute_delay=2.0)
        pool.start(timeout=120.0)
        futures = [pool.submit(json.loads(distinct_body(i))) for i in range(3)]
        started = time.monotonic()
        pool.close(timeout=0.3)
        elapsed = time.monotonic() - started
        assert elapsed < 10.0
        for future in futures:
            assert future.done()
            assert future.cancelled() or future.exception() is not None

    def test_frontend_drain_is_bounded(self):
        pool = WorkerPool(1, compute_delay=5.0)
        frontend = PooledFrontend(pool)
        frontend.start(timeout=120.0)
        host, port = frontend.address
        outcome: list[object] = []

        def slow_client() -> None:
            try:
                outcome.append(post_assign(host, port, distinct_body(0)))
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                outcome.append(exc)

        client = threading.Thread(target=slow_client, daemon=True)
        client.start()
        time.sleep(0.5)  # let the request reach the worker
        started = time.monotonic()
        frontend.close(timeout=0.5)
        assert time.monotonic() - started < 20.0
        client.join(10.0)
        # The straggler was answered (500 after its future was failed)
        # or dropped with the connection — never left hanging.
        assert not client.is_alive()


class TestWorkerDeath:
    def test_dead_worker_fails_inflight_and_pool_reports(self):
        pool = WorkerPool(1, compute_delay=3.0)
        pool.start(timeout=120.0)
        try:
            future = pool.submit(json.loads(distinct_body(0)))
            handle = pool._handles[0]
            handle.proc.terminate()
            # The in-flight future must resolve — cancelled (it never
            # started) or failed with the worker-death RuntimeError.
            from concurrent.futures import CancelledError

            with pytest.raises((CancelledError, RuntimeError)):
                future.result(timeout=30.0)
            deadline = time.monotonic() + 10.0
            while pool.workers and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.workers == 0
            with pytest.raises(RuntimeError):
                pool.submit(json.loads(distinct_body(1)))
        finally:
            pool.close(timeout=5.0)
