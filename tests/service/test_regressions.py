"""Regression tests for service hardening fixes.

Covers four bugs in the service layer:

* ``Counter.inc`` accepted NaN/inf amounts, poisoning the cumulative
  series forever;
* ``LatencySummary.render`` snapshotted quantiles, count, and sum under
  separate lock acquisitions, so a scrape racing an ``observe()`` could
  report totals from a different window than its quantiles;
* ``DeadlineAssignmentService.assign`` skipped the latency observation
  (and the assignments counter) when the batched computation raised,
  breaking ``assignments_total == cache_hits + cache_misses``;
* ``_send_json`` wrote the success status line before serializing, so a
  non-finite float in a response killed the connection mid-reply after
  metrics had already counted a 200.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.service import DeadlineAssignmentService
from repro.service.api import request_from_dict
from repro.service.metrics import Counter, LatencySummary

from .conftest import chain_request
from .test_server import get, http_server, post  # noqa: F401 - fixture


class TestCounterFiniteness:
    @pytest.mark.parametrize(
        "amount", [float("nan"), float("inf"), float("-inf"), -1.0]
    )
    def test_rejects_non_finite_and_negative(self, amount):
        counter = Counter("c_total", "test counter")
        counter.inc(2.0)
        with pytest.raises(ValueError):
            counter.inc(amount)
        # The rejected amount must not have touched the series.
        assert counter.value() == 2.0
        assert math.isfinite(counter.total())

    def test_labelled_child_also_guarded(self):
        counter = Counter("c_total", "test counter")
        with pytest.raises(ValueError):
            counter.inc(float("nan"), endpoint="assign")
        assert counter.value(endpoint="assign") == 0.0


class TestLatencySummarySnapshot:
    def test_render_count_and_sum_are_consistent_under_writes(self):
        """count/sum/quantiles must come from one atomic snapshot.

        Every observation is exactly 1.0, so any torn snapshot shows up
        as ``sum != count``; the pre-fix render (three separate lock
        acquisitions) tears under a concurrent writer.
        """
        summary = LatencySummary("s_seconds", "test summary", window=4096)
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                summary.observe(1.0)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                lines = summary.render()
                count = float(lines[-2].split()[-1])
                total = float(lines[-1].split()[-1])
                assert total == count
                if count:
                    for line in lines:
                        if "quantile=" in line:
                            assert float(line.split()[-1]) == 1.0
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5)

    def test_render_empty_is_nan_quantiles_zero_totals(self):
        summary = LatencySummary("s_seconds", "test summary")
        lines = summary.render()
        assert lines[-2].endswith(" 0")
        assert lines[-1].endswith(" 0")
        for line in lines:
            if "quantile=" in line:
                assert line.split()[-1] == "NaN"


class TestAssignFailurePath:
    def test_failed_computation_observes_latency_and_counts(self):
        with DeadlineAssignmentService(batch_wait=0.001) as service:

            def boom(request):
                raise RuntimeError("worker pool exploded")

            service.batcher.submit = boom
            request = request_from_dict(chain_request())
            with pytest.raises(RuntimeError):
                service.assign(request)
            # Latency is observed on the failure path too...
            assert service.metrics.assign_latency.count == 1
            # ...and the assignments invariant holds: every cache miss
            # lands a bump, here as the "failed" source.
            assert service.metrics.assignments.value(source="failed") == 1.0
            assert service.metrics.cache_misses.total() == 1.0
            assert (
                service.metrics.assignments.total()
                == service.metrics.cache_hits.total()
                + service.metrics.cache_misses.total()
            )


class TestNonFiniteResponse:
    def test_nan_response_degrades_to_500_json(self, http_server):
        server, base = http_server
        server.service.assign_dict = lambda data: {"bad": float("nan")}
        status, doc = post(base, "/assign", chain_request())
        assert status == 500
        assert "non-finite" in doc["error"]
        # The connection (and server) survives: a follow-up works.
        status, body = get(base, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}
        # The failure was counted as what it was, not as a success.
        metrics = server.service.metrics
        assert metrics.errors.value(kind="non_finite_json") == 1.0
        assert metrics.requests.value(endpoint="assign", status="500") == 1.0
        assert metrics.requests.value(endpoint="assign", status="200") == 0.0
