"""Unit tests for the micro-batching queue."""

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.errors import ServiceOverloadError, ValidationError
from repro.service import MicroBatcher


class TestBatching:
    def test_single_item_round_trip(self):
        with MicroBatcher(lambda x: x * 2, max_wait=0.01) as batcher:
            assert batcher.submit(21).result(timeout=5) == 42

    def test_results_map_to_their_items(self):
        with MicroBatcher(lambda x: x + 1, max_batch=4, max_wait=0.05) as b:
            futures = [b.submit(i) for i in range(10)]
            assert [f.result(timeout=5) for f in futures] == list(range(1, 11))

    def test_burst_coalesces_into_one_batch(self):
        sizes: list[int] = []
        gate = threading.Event()

        def handler(x):
            gate.wait(5)
            return x

        batcher = MicroBatcher(
            handler, max_batch=4, max_wait=0.5, on_batch=sizes.append
        )
        try:
            # Four near-simultaneous submissions, well inside max_wait.
            futures = [batcher.submit(i) for i in range(4)]
            gate.set()
            for f in futures:
                f.result(timeout=5)
            assert sizes == [4]
        finally:
            batcher.close()

    def test_batch_closes_at_max_batch(self):
        sizes: list[int] = []
        batcher = MicroBatcher(
            lambda x: x, max_batch=2, max_wait=10.0, on_batch=sizes.append
        )
        try:
            futures = [batcher.submit(i) for i in range(4)]
            for f in futures:
                f.result(timeout=5)
            # max_wait is huge, so only the size cap can close batches.
            assert sizes == [2, 2]
        finally:
            batcher.close()

    def test_exception_fails_only_that_item(self):
        def handler(x):
            if x == 2:
                raise ValueError("boom")
            return x

        with MicroBatcher(handler, max_batch=4, max_wait=0.05) as batcher:
            futures = [batcher.submit(i) for i in range(4)]
            assert futures[0].result(timeout=5) == 0
            with pytest.raises(ValueError, match="boom"):
                futures[2].result(timeout=5)
            assert futures[3].result(timeout=5) == 3

    def test_observer_errors_are_swallowed(self):
        def bad_observer(size):
            raise RuntimeError("observer bug")

        with MicroBatcher(
            lambda x: x, max_wait=0.01, on_batch=bad_observer
        ) as batcher:
            assert batcher.submit(7).result(timeout=5) == 7


class TestLifecycle:
    def test_close_drains_outstanding_work(self):
        batcher = MicroBatcher(lambda x: x, max_batch=2, max_wait=0.01)
        futures = [batcher.submit(i) for i in range(6)]
        batcher.close()
        assert [f.result(timeout=1) for f in futures] == list(range(6))

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda x: x)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda x: x)
        batcher.close()
        batcher.close()

    def test_parallel_workers_overlap_batches(self):
        started = threading.Barrier(2, timeout=5)

        def handler(x):
            started.wait()  # both workers must be in flight at once
            return x

        batcher = MicroBatcher(handler, max_batch=1, max_wait=0.0, workers=2)
        try:
            futures = [batcher.submit(i) for i in range(2)]
            assert sorted(f.result(timeout=5) for f in futures) == [0, 1]
        finally:
            batcher.close()


class TestCloseRace:
    def test_submit_close_race_never_strands_a_future(self):
        """Submitters racing close(): every accepted future resolves.

        Regression for the unsynchronized ``_closed`` check: an item
        enqueued concurrently with ``close()`` could land *behind* the
        stop sentinel and its future never resolved, hanging the caller
        forever.  Repeated rounds make the interleaving window real.
        """
        for _ in range(15):
            batcher = MicroBatcher(
                lambda x: x, max_batch=4, max_wait=0.0005, workers=2
            )
            futures: list = []
            futures_lock = threading.Lock()

            def pound():
                while True:
                    try:
                        future = batcher.submit(1)
                    except RuntimeError:
                        return  # closed — acceptable, nothing accepted
                    with futures_lock:
                        futures.append(future)

            threads = [threading.Thread(target=pound) for _ in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.005)
            batcher.close()
            for t in threads:
                t.join(timeout=5)
            assert not any(t.is_alive() for t in threads)
            # Accepted before close ⇒ enqueued before the sentinel ⇒
            # the full drain must resolve it.  None may hang.
            for future in futures:
                assert future.result(timeout=5) == 1

    def test_close_timeout_releases_stuck_callers(self):
        release = threading.Event()

        def handler(x):
            release.wait(30)
            return x

        batcher = MicroBatcher(handler, max_batch=1, max_wait=0.0, workers=1)
        stuck = batcher.submit(1)    # running, blocked in the handler
        queued = batcher.submit(2)   # waiting behind it in the pool
        start = time.monotonic()
        batcher.close(timeout=0.2)
        assert time.monotonic() - start < 5.0
        # Neither caller hangs: the running item is failed, the queued
        # one is cancelled (either way .result() returns promptly).
        with pytest.raises((RuntimeError, CancelledError)):
            stuck.result(timeout=1)
        with pytest.raises((RuntimeError, CancelledError)):
            queued.result(timeout=1)
        release.set()  # let the worker thread exit cleanly


class TestBackpressure:
    def test_max_queue_rejects_overflow_then_recovers(self):
        gate = threading.Event()

        def handler(x):
            gate.wait(10)
            return x

        batcher = MicroBatcher(
            handler, max_batch=1, max_wait=0.0, workers=1, max_queue=2
        )
        try:
            first = batcher.submit(1)
            second = batcher.submit(2)
            with pytest.raises(ServiceOverloadError):
                batcher.submit(3)
            gate.set()
            assert first.result(timeout=5) == 1
            assert second.result(timeout=5) == 2
            # Capacity freed: submissions are accepted again.
            assert batcher.submit(4).result(timeout=5) == 4
        finally:
            gate.set()
            batcher.close()

    def test_depth_tracks_in_flight_items(self):
        gate = threading.Event()

        def handler(x):
            gate.wait(10)
            return x

        batcher = MicroBatcher(handler, max_batch=1, max_wait=0.0, workers=1)
        try:
            assert batcher.depth == 0
            futures = [batcher.submit(i) for i in range(3)]
            assert batcher.depth == 3
            gate.set()
            for f in futures:
                f.result(timeout=5)
            assert batcher.depth == 0
        finally:
            gate.set()
            batcher.close()


class TestValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValidationError):
            MicroBatcher(lambda x: x, max_batch=0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda x: x, max_wait=-1.0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda x: x, workers=0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda x: x, max_queue=0)


class TestFlushHandler:
    """The whole-batch fast path behind the vec batch tier."""

    def test_small_batches_keep_per_item_handler(self):
        calls = []
        with MicroBatcher(
            lambda x: calls.append(x) or x * 2,
            max_wait=0.01,
            flush_handler=lambda items: [item * 3 for item in items],
            flush_min=8,
        ) as batcher:
            assert batcher.submit(5).result(timeout=5.0) == 10
        assert calls == [5]

    def test_large_batch_routes_through_flush_handler(self):
        flushed = []

        def flush(items):
            flushed.append(list(items))
            return [item * 3 for item in items]

        with MicroBatcher(
            lambda x: x * 2,
            max_batch=16,
            max_wait=0.2,
            flush_handler=flush,
            flush_min=4,
        ) as batcher:
            futures = [batcher.submit(i) for i in range(8)]
            results = [f.result(timeout=5.0) for f in futures]
        assert results == [i * 3 for i in range(8)]
        assert sum(len(batch) for batch in flushed) == 8

    def test_exception_entry_fails_only_that_item(self):
        def flush(items):
            return [
                ValueError(f"boom {item}") if item == 2 else item
                for item in items
            ]

        with MicroBatcher(
            lambda x: x,
            max_batch=8,
            max_wait=0.2,
            flush_handler=flush,
            flush_min=2,
        ) as batcher:
            futures = [batcher.submit(i) for i in range(4)]
            done = [f for f in futures]
            assert done[0].result(timeout=5.0) == 0
            with pytest.raises(ValueError, match="boom 2"):
                done[2].result(timeout=5.0)
            assert done[3].result(timeout=5.0) == 3

    def test_flush_handler_crash_fails_all_items_not_strands(self):
        def flush(items):
            raise RuntimeError("flush path exploded")

        with MicroBatcher(
            lambda x: x,
            max_batch=8,
            max_wait=0.2,
            flush_handler=flush,
            flush_min=2,
        ) as batcher:
            futures = [batcher.submit(i) for i in range(4)]
            for future in futures:
                with pytest.raises(RuntimeError, match="exploded"):
                    future.result(timeout=5.0)

    def test_wrong_length_answer_fails_all_items(self):
        with MicroBatcher(
            lambda x: x,
            max_batch=8,
            max_wait=0.2,
            flush_handler=lambda items: [1],
            flush_min=2,
        ) as batcher:
            futures = [batcher.submit(i) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="answered"):
                    future.result(timeout=5.0)

    def test_flush_min_validated(self):
        with pytest.raises(ValidationError):
            MicroBatcher(
                lambda x: x, flush_handler=lambda items: items, flush_min=1
            )
