"""Unit tests for the micro-batching queue."""

import threading
import time

import pytest

from repro.errors import ValidationError
from repro.service import MicroBatcher


class TestBatching:
    def test_single_item_round_trip(self):
        with MicroBatcher(lambda x: x * 2, max_wait=0.01) as batcher:
            assert batcher.submit(21).result(timeout=5) == 42

    def test_results_map_to_their_items(self):
        with MicroBatcher(lambda x: x + 1, max_batch=4, max_wait=0.05) as b:
            futures = [b.submit(i) for i in range(10)]
            assert [f.result(timeout=5) for f in futures] == list(range(1, 11))

    def test_burst_coalesces_into_one_batch(self):
        sizes: list[int] = []
        gate = threading.Event()

        def handler(x):
            gate.wait(5)
            return x

        batcher = MicroBatcher(
            handler, max_batch=4, max_wait=0.5, on_batch=sizes.append
        )
        try:
            # Four near-simultaneous submissions, well inside max_wait.
            futures = [batcher.submit(i) for i in range(4)]
            gate.set()
            for f in futures:
                f.result(timeout=5)
            assert sizes == [4]
        finally:
            batcher.close()

    def test_batch_closes_at_max_batch(self):
        sizes: list[int] = []
        batcher = MicroBatcher(
            lambda x: x, max_batch=2, max_wait=10.0, on_batch=sizes.append
        )
        try:
            futures = [batcher.submit(i) for i in range(4)]
            for f in futures:
                f.result(timeout=5)
            # max_wait is huge, so only the size cap can close batches.
            assert sizes == [2, 2]
        finally:
            batcher.close()

    def test_exception_fails_only_that_item(self):
        def handler(x):
            if x == 2:
                raise ValueError("boom")
            return x

        with MicroBatcher(handler, max_batch=4, max_wait=0.05) as batcher:
            futures = [batcher.submit(i) for i in range(4)]
            assert futures[0].result(timeout=5) == 0
            with pytest.raises(ValueError, match="boom"):
                futures[2].result(timeout=5)
            assert futures[3].result(timeout=5) == 3

    def test_observer_errors_are_swallowed(self):
        def bad_observer(size):
            raise RuntimeError("observer bug")

        with MicroBatcher(
            lambda x: x, max_wait=0.01, on_batch=bad_observer
        ) as batcher:
            assert batcher.submit(7).result(timeout=5) == 7


class TestLifecycle:
    def test_close_drains_outstanding_work(self):
        batcher = MicroBatcher(lambda x: x, max_batch=2, max_wait=0.01)
        futures = [batcher.submit(i) for i in range(6)]
        batcher.close()
        assert [f.result(timeout=1) for f in futures] == list(range(6))

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda x: x)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda x: x)
        batcher.close()
        batcher.close()

    def test_parallel_workers_overlap_batches(self):
        started = threading.Barrier(2, timeout=5)

        def handler(x):
            started.wait()  # both workers must be in flight at once
            return x

        batcher = MicroBatcher(handler, max_batch=1, max_wait=0.0, workers=2)
        try:
            futures = [batcher.submit(i) for i in range(2)]
            assert sorted(f.result(timeout=5) for f in futures) == [0, 1]
        finally:
            batcher.close()


class TestValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValidationError):
            MicroBatcher(lambda x: x, max_batch=0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda x: x, max_wait=-1.0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda x: x, workers=0)
