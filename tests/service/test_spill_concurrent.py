"""Shared spill tier under concurrent worker processes.

The pooled topology's cluster-wide cache rests on one claim: the
:class:`~repro.store.TrialStore` directory can be appended to and read
by multiple *processes* at once — ``fcntl``-locked appends, torn-tail
healing, tail refresh on read — so an assignment computed by worker A
is a cache hit for worker B.  These tests pin that claim with real
spawned workers sharing one ``cache_dir``.
"""

from __future__ import annotations

import json

import pytest

from repro.service import WorkerPool
from repro.store import TrialStore

from .conftest import chain_request


def body_doc(i: int) -> dict:
    return chain_request(
        wcets=(10 + i, 20 + 2 * i, 15 + i), deadline=200.0 + i
    )


@pytest.fixture
def shared_dir(tmp_path):
    return tmp_path / "spill"


class TestSharedSpillAcrossWorkers:
    def test_worker_a_result_is_cache_hit_for_worker_b(self, shared_dir):
        """Two separate worker processes, one spill directory."""
        doc = body_doc(0)
        with WorkerPool(1, cache_dir=shared_dir) as pool_a:
            pool_a.start(timeout=120.0)
            first = pool_a.submit(doc).result(timeout=60.0)
            assert first["cached"] is False
        # A brand-new process (fresh LRU, same directory) must serve
        # the same request from the spill tier on its very first try.
        with WorkerPool(1, cache_dir=shared_dir) as pool_b:
            pool_b.start(timeout=120.0)
            second = pool_b.submit(doc).result(timeout=60.0)
            assert second["cached"] is True
            assert second["slices"] == first["slices"]
            assert second["digest"] == first["digest"]
            snapshots = pool_b.metrics_snapshots()
        assert len(snapshots) == 1
        store = snapshots[0]["store"]
        assert store["hits"] >= 1

    def test_concurrent_appends_leave_no_torn_records(self, shared_dir):
        """Disjoint workloads written from two live pools verify clean."""
        with WorkerPool(1, cache_dir=shared_dir) as pool_a, WorkerPool(
            1, cache_dir=shared_dir
        ) as pool_b:
            pool_a.start(timeout=120.0)
            pool_b.start(timeout=120.0)
            futures = []
            for i in range(6):
                futures.append(pool_a.submit(body_doc(2 * i)))
                futures.append(pool_b.submit(body_doc(2 * i + 1)))
            digests = set()
            for future in futures:
                result = future.result(timeout=120.0)
                digests.add(result["digest"])
            assert len(digests) == 12
        report = TrialStore(shared_dir).verify()
        assert report["torn"] == 0
        assert report["invalid"] == 0
        assert report["records"] >= 12

    def test_cross_pool_live_hit(self, shared_dir):
        """B sees A's append while both pools are still running."""
        with WorkerPool(1, cache_dir=shared_dir) as pool_a, WorkerPool(
            1, cache_dir=shared_dir
        ) as pool_b:
            pool_a.start(timeout=120.0)
            pool_b.start(timeout=120.0)
            doc = body_doc(99)
            first = pool_a.submit(doc).result(timeout=60.0)
            assert first["cached"] is False
            second = pool_b.submit(doc).result(timeout=60.0)
            assert second["cached"] is True
            assert json.dumps(second["slices"], sort_keys=True) == json.dumps(
                first["slices"], sort_keys=True
            )
