"""Unit tests for graph algorithms, with networkx as an oracle."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    TransitiveClosure,
    average_parallelism,
    chain_graph,
    count_paths,
    critical_path_tasks,
    diamond_graph,
    graph_depth,
    iter_paths,
    level_assignment,
    longest_path_length,
    parallel_sets,
    static_levels,
)


def wide_graph():
    """Two parallel chains sharing a source and a sink."""
    return (
        GraphBuilder()
        .task("s", 5).task("a1", 10).task("a2", 10)
        .task("b1", 30).task("t", 5)
        .edge("s", "a1").edge("a1", "a2").edge("a2", "t")
        .edge("s", "b1").edge("b1", "t")
        .build()
    )


class TestTransitiveClosure:
    def test_matches_networkx(self, diamond):
        g = wide_graph()
        closure = TransitiveClosure(g)
        oracle = nx.transitive_closure(g.to_networkx())
        for u in g.task_ids():
            for v in g.task_ids():
                if u == v:
                    continue
                assert closure.reachable(u, v) == oracle.has_edge(u, v), (u, v)

    def test_descendants_ancestors(self):
        g = wide_graph()
        c = TransitiveClosure(g)
        assert c.descendants("s") == {"a1", "a2", "b1", "t"}
        assert c.ancestors("t") == {"s", "a1", "a2", "b1"}
        assert c.ancestors("s") == set()

    def test_reachability_is_irreflexive(self):
        c = TransitiveClosure(wide_graph())
        for tid in ("s", "a1", "t"):
            assert not c.reachable(tid, tid)

    def test_unknown_id(self):
        with pytest.raises(GraphError):
            TransitiveClosure(wide_graph()).reachable("s", "zzz")


class TestParallelSets:
    def test_chain_has_empty_parallel_sets(self):
        g = chain_graph([10, 10, 10])
        assert all(v == 0 for v in parallel_sets(g).values())

    def test_diamond_branches_are_parallel(self, diamond):
        sizes = parallel_sets(diamond)
        assert sizes == {"top": 0, "left": 1, "right": 1, "bottom": 0}

    def test_partition_identity(self):
        # anc + desc + parallel set + self covers all tasks.
        g = wide_graph()
        c = TransitiveClosure(g)
        n = g.n_tasks
        for tid in g.task_ids():
            total = (
                len(c.ancestors(tid))
                + len(c.descendants(tid))
                + c.parallel_set_size(tid)
                + 1
            )
            assert total == n

    def test_parallel_set_symmetry(self):
        g = wide_graph()
        c = TransitiveClosure(g)
        for u in g.task_ids():
            for v in c.parallel_set(u):
                assert u in c.parallel_set(v)


class TestStaticLevels:
    def test_chain(self):
        g = chain_graph([10, 20, 15])
        levels = static_levels(g, lambda t: g.task(t).mean_wcet())
        assert levels["t2"] == 15
        assert levels["t1"] == 35
        assert levels["t0"] == 45

    def test_longest_path_picks_heavier_branch(self):
        g = wide_graph()
        cost = lambda t: g.task(t).mean_wcet()
        assert longest_path_length(g, cost) == 5 + 30 + 5  # via b1

    def test_empty_graph_longest_path(self):
        from repro.graph import TaskGraph

        assert longest_path_length(TaskGraph(), lambda t: 0.0) == 0.0


class TestAverageParallelism:
    def test_eq7_on_hand_graph(self):
        g = wide_graph()
        cost = lambda t: g.task(t).mean_wcet()
        # xi = total workload / longest path = 60 / 40
        assert average_parallelism(g, cost) == pytest.approx(60 / 40)

    def test_chain_parallelism_is_one(self):
        g = chain_graph([7, 7, 7])
        assert average_parallelism(g, lambda t: 7.0) == pytest.approx(1.0)

    def test_empty_graph_raises(self):
        from repro.graph import TaskGraph

        with pytest.raises(GraphError):
            average_parallelism(TaskGraph(), lambda t: 1.0)


class TestDepthAndLevels:
    def test_graph_depth(self, diamond):
        assert graph_depth(diamond) == 3
        assert graph_depth(chain_graph([1] * 5)) == 5

    def test_level_assignment(self, diamond):
        levels = level_assignment(diamond)
        assert levels == {"top": 0, "left": 1, "right": 1, "bottom": 2}


class TestPaths:
    def test_iter_paths_diamond(self, diamond):
        paths = sorted(tuple(p) for p in iter_paths(diamond, "top", "bottom"))
        assert paths == [
            ("top", "left", "bottom"),
            ("top", "right", "bottom"),
        ]

    def test_iter_paths_limit(self, diamond):
        assert len(list(iter_paths(diamond, "top", "bottom", limit=1))) == 1

    def test_count_paths(self, diamond):
        assert count_paths(diamond, "top", "bottom") == 2
        assert count_paths(diamond, "left", "right") == 0

    def test_count_paths_matches_enumeration(self):
        g = wide_graph()
        n = count_paths(g, "s", "t")
        assert n == len(list(iter_paths(g, "s", "t")))


class TestCriticalPathTasks:
    def test_picks_longest_route(self):
        g = wide_graph()
        path = critical_path_tasks(g, lambda t: g.task(t).mean_wcet())
        assert path == ["s", "b1", "t"]

    def test_empty(self):
        from repro.graph import TaskGraph

        assert critical_path_tasks(TaskGraph(), lambda t: 0.0) == []

    def test_diamond_tie_breaks_deterministically(self, diamond):
        p1 = critical_path_tasks(diamond, lambda t: 10.0)
        p2 = critical_path_tasks(diamond, lambda t: 10.0)
        assert p1 == p2
