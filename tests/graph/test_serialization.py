"""Unit tests for task-graph JSON serialization."""

import pytest

from repro.errors import SerializationError
from repro.graph import (
    GraphBuilder,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)


def rich_graph():
    return (
        GraphBuilder()
        .task("a", {"fast": 8, "slow": 12}, phasing=2.0, resources=["bus"])
        .task("b", 20, relative_deadline=30.0, period=100.0)
        .task("c", 15)
        .edge("a", "b", message=2.5)
        .edge("b", "c")
        .e2e("a", "c", 120)
        .build()
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        g = rich_graph()
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.task_ids() == g.task_ids()
        assert sorted(g2.edges()) == sorted(g.edges())
        assert g2.e2e_deadlines() == g.e2e_deadlines()
        a = g2.task("a")
        assert a.wcet == {"fast": 8.0, "slow": 12.0}
        assert a.phasing == 2.0
        assert a.resources == {"bus"}
        b = g2.task("b")
        assert b.relative_deadline == 30.0
        assert b.period == 100.0

    def test_file_round_trip(self, tmp_path):
        g = rich_graph()
        path = tmp_path / "g.json"
        save_graph(g, path)
        g2 = load_graph(path)
        assert g2.n_tasks == g.n_tasks
        assert g2.n_edges == g.n_edges


class TestMalformed:
    def test_wrong_format_marker(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"format": "bogus/9", "tasks": []})

    def test_non_dict_document(self):
        with pytest.raises(SerializationError):
            graph_from_dict([1, 2, 3])

    def test_missing_fields(self):
        doc = {"format": "repro.taskgraph/1", "tasks": [{"id": "a"}]}
        with pytest.raises(SerializationError):
            graph_from_dict(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_graph(path)
