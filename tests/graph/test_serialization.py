"""Unit tests for task-graph JSON serialization."""

import pytest

from repro.errors import SerializationError
from repro.graph import (
    GraphBuilder,
    canonical_graph_json,
    graph_digest,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)


def rich_graph():
    return (
        GraphBuilder()
        .task("a", {"fast": 8, "slow": 12}, phasing=2.0, resources=["bus"])
        .task("b", 20, relative_deadline=30.0, period=100.0)
        .task("c", 15)
        .edge("a", "b", message=2.5)
        .edge("b", "c")
        .e2e("a", "c", 120)
        .build()
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        g = rich_graph()
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.task_ids() == g.task_ids()
        assert sorted(g2.edges()) == sorted(g.edges())
        assert g2.e2e_deadlines() == g.e2e_deadlines()
        a = g2.task("a")
        assert a.wcet == {"fast": 8.0, "slow": 12.0}
        assert a.phasing == 2.0
        assert a.resources == {"bus"}
        b = g2.task("b")
        assert b.relative_deadline == 30.0
        assert b.period == 100.0

    def test_file_round_trip(self, tmp_path):
        g = rich_graph()
        path = tmp_path / "g.json"
        save_graph(g, path)
        g2 = load_graph(path)
        assert g2.n_tasks == g.n_tasks
        assert g2.n_edges == g.n_edges


def scrambled_graph():
    """The same structure as :func:`rich_graph`, built in another order."""
    return (
        GraphBuilder()
        .task("c", 15)
        .task("b", 20, relative_deadline=30.0, period=100.0)
        .task("a", {"slow": 12, "fast": 8}, phasing=2.0, resources=["bus"])
        .edge("b", "c")
        .edge("a", "b", message=2.5)
        .e2e("a", "c", 120)
        .build()
    )


class TestCanonicalForm:
    def test_construction_order_does_not_change_the_document(self):
        assert graph_to_dict(rich_graph()) == graph_to_dict(scrambled_graph())

    def test_tasks_and_edges_emitted_sorted(self):
        doc = graph_to_dict(scrambled_graph())
        assert [t["id"] for t in doc["tasks"]] == ["a", "b", "c"]
        assert [(e["src"], e["dst"]) for e in doc["edges"]] == [
            ("a", "b"),
            ("b", "c"),
        ]
        assert list(doc["tasks"][0]["wcet"]) == ["fast", "slow"]

    def test_canonical_json_is_compact_and_deterministic(self):
        text = canonical_graph_json(rich_graph())
        assert ": " not in text and ", " not in text
        assert text == canonical_graph_json(scrambled_graph())


class TestDigest:
    def test_digest_is_sha256_hex(self):
        digest = graph_digest(rich_graph())
        assert len(digest) == 64
        int(digest, 16)  # hex-parseable

    def test_equal_graphs_share_a_digest(self):
        assert graph_digest(rich_graph()) == graph_digest(scrambled_graph())

    def test_any_content_change_changes_the_digest(self):
        base = graph_digest(rich_graph())
        heavier = (
            GraphBuilder()
            .task("a", {"fast": 8, "slow": 12}, phasing=2.0, resources=["bus"])
            .task("b", 20, relative_deadline=30.0, period=100.0)
            .task("c", 16)  # one WCET nudged
            .edge("a", "b", message=2.5)
            .edge("b", "c")
            .e2e("a", "c", 120)
            .build()
        )
        assert graph_digest(heavier) != base

    def test_digest_survives_round_trip(self):
        g = rich_graph()
        assert graph_digest(graph_from_dict(graph_to_dict(g))) == graph_digest(g)


class TestMalformed:
    def test_wrong_format_marker(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"format": "bogus/9", "tasks": []})

    def test_non_dict_document(self):
        with pytest.raises(SerializationError):
            graph_from_dict([1, 2, 3])

    def test_missing_fields(self):
        doc = {"format": "repro.taskgraph/1", "tasks": [{"id": "a"}]}
        with pytest.raises(SerializationError):
            graph_from_dict(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_graph(path)
