"""Unit tests for the Task model (§3.2)."""

import pytest

from repro.errors import ValidationError
from repro.graph import Task


def make(**kw):
    defaults = dict(id="t", wcet={"e1": 10.0, "e2": 20.0})
    defaults.update(kw)
    return Task(**defaults)


class TestValidation:
    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError):
            make(id="")

    def test_empty_wcet_rejected(self):
        with pytest.raises(ValidationError):
            make(wcet={})

    def test_zero_wcet_rejected(self):
        with pytest.raises(ValidationError):
            make(wcet={"e1": 0.0})

    def test_negative_wcet_rejected(self):
        with pytest.raises(ValidationError):
            make(wcet={"e1": -1.0})

    def test_negative_phasing_rejected(self):
        with pytest.raises(ValidationError):
            make(phasing=-1.0)

    def test_nonpositive_relative_deadline_rejected(self):
        with pytest.raises(ValidationError):
            make(relative_deadline=0.0)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValidationError):
            make(period=-5.0)

    def test_deadline_exceeding_period_rejected(self):
        # Constrained-deadline model: d_i <= T_i (§3.3).
        with pytest.raises(ValidationError):
            make(relative_deadline=30.0, period=20.0)

    def test_deadline_equal_to_period_allowed(self):
        t = make(relative_deadline=20.0, period=20.0)
        assert t.relative_deadline == 20.0


class TestWcetQueries:
    def test_eligibility(self):
        t = make()
        assert t.is_eligible("e1")
        assert not t.is_eligible("e3")
        assert t.eligible_classes() == {"e1", "e2"}

    def test_min_max_mean(self):
        t = make()
        assert t.min_wcet() == 10.0
        assert t.max_wcet() == 20.0
        assert t.mean_wcet() == 15.0

    def test_wcet_on_ineligible_class_raises(self):
        with pytest.raises(KeyError):
            make().wcet_on("e3")

    def test_wcet_mapping_is_copied(self):
        src = {"e1": 10.0}
        t = Task(id="t", wcet=src)
        src["e1"] = 99.0
        assert t.wcet_on("e1") == 10.0


class TestInvocations:
    def test_aperiodic_single_invocation(self):
        t = make(phasing=5.0)
        assert t.arrival_of(1) == 5.0
        with pytest.raises(ValidationError):
            t.arrival_of(2)

    def test_periodic_arrivals(self):
        t = make(phasing=3.0, period=10.0)
        assert t.arrival_of(1) == 3.0
        assert t.arrival_of(4) == 33.0

    def test_invocation_indices_are_one_based(self):
        with pytest.raises(ValidationError):
            make().arrival_of(0)

    def test_absolute_deadline(self):
        t = make(phasing=2.0, period=10.0, relative_deadline=8.0)
        assert t.absolute_deadline_of(2) == 2.0 + 10.0 + 8.0

    def test_absolute_deadline_requires_relative_deadline(self):
        with pytest.raises(ValidationError):
            make().absolute_deadline_of(1)

    def test_is_periodic(self):
        assert make(period=10.0).is_periodic()
        assert not make().is_periodic()


class TestWithDeadline:
    def test_with_deadline_copies_everything_else(self):
        t = make(phasing=1.0, period=50.0, resources=frozenset({"r"}))
        t2 = t.with_deadline(25.0)
        assert t2.relative_deadline == 25.0
        assert t2.id == t.id
        assert t2.phasing == 1.0
        assert t2.period == 50.0
        assert t2.resources == {"r"}
        assert t.relative_deadline is None  # original untouched
