"""Unit tests for the TaskGraph model (§3.2, §4.1)."""

import pytest

from repro.errors import CycleError, GraphError, ValidationError
from repro.graph import GraphBuilder, Task, TaskGraph


def simple_graph() -> TaskGraph:
    g = TaskGraph()
    for tid, c in (("a", 10.0), ("b", 20.0), ("c", 15.0)):
        g.add_task(Task(id=tid, wcet={"e1": c}))
    g.add_edge("a", "b", 3.0)
    g.add_edge("b", "c")
    return g


class TestConstruction:
    def test_duplicate_task_rejected(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_task(Task(id="a", wcet={"e1": 1.0}))

    def test_edge_to_unknown_task_rejected(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_edge("a", "zzz")
        with pytest.raises(GraphError):
            g.add_edge("zzz", "a")

    def test_self_loop_rejected(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_edge("a", "b")

    def test_negative_message_size_rejected(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.add_edge("a", "c", -1.0)

    def test_replace_task_keeps_arcs(self):
        g = simple_graph()
        g.replace_task(Task(id="b", wcet={"e1": 99.0}))
        assert g.task("b").wcet_on("e1") == 99.0
        assert g.has_edge("a", "b") and g.has_edge("b", "c")

    def test_replace_unknown_task_rejected(self):
        with pytest.raises(GraphError):
            simple_graph().replace_task(Task(id="z", wcet={"e1": 1.0}))


class TestQueries:
    def test_counts(self):
        g = simple_graph()
        assert g.n_tasks == 3
        assert g.n_edges == 2
        assert len(g) == 3

    def test_adjacency(self):
        g = simple_graph()
        assert g.successors("a") == ["b"]
        assert g.predecessors("c") == ["b"]
        assert g.in_degree("a") == 0
        assert g.out_degree("b") == 1

    def test_message_size(self):
        g = simple_graph()
        assert g.message_size("a", "b") == 3.0
        assert g.message_size("b", "c") == 0.0
        with pytest.raises(GraphError):
            g.message_size("a", "c")

    def test_set_message_size(self):
        g = simple_graph()
        g.set_message_size("a", "b", 7.0)
        assert g.message_size("a", "b") == 7.0
        with pytest.raises(GraphError):
            g.set_message_size("a", "c", 1.0)
        with pytest.raises(GraphError):
            g.set_message_size("a", "b", -2.0)

    def test_inputs_outputs(self):
        g = simple_graph()
        assert g.input_tasks() == ["a"]
        assert g.output_tasks() == ["c"]

    def test_edges_iteration(self):
        g = simple_graph()
        assert sorted(g.edges()) == [("a", "b", 3.0), ("b", "c", 0.0)]

    def test_unknown_task_lookup(self):
        with pytest.raises(GraphError):
            simple_graph().task("nope")


class TestE2EDeadlines:
    def test_set_and_get(self):
        g = simple_graph()
        g.set_e2e_deadline("a", "c", 100.0)
        assert g.e2e_deadline("a", "c") == 100.0

    def test_missing_pair_raises(self):
        with pytest.raises(GraphError):
            simple_graph().e2e_deadline("a", "c")

    def test_nonpositive_deadline_rejected(self):
        g = simple_graph()
        with pytest.raises(ValidationError):
            g.set_e2e_deadline("a", "c", 0.0)

    def test_output_deadline_takes_min_over_pairs(self):
        g = TaskGraph()
        g.add_task(Task(id="i1", wcet={"e": 1.0}, phasing=0.0))
        g.add_task(Task(id="i2", wcet={"e": 1.0}, phasing=5.0))
        g.add_task(Task(id="o", wcet={"e": 1.0}))
        g.add_edge("i1", "o")
        g.add_edge("i2", "o")
        g.set_e2e_deadline("i1", "o", 100.0)
        g.set_e2e_deadline("i2", "o", 80.0)
        # bounds: 0 + 100 = 100 and 5 + 80 = 85 -> min is 85
        assert g.output_deadline("o") == 85.0

    def test_output_deadline_none_when_uncovered(self):
        assert simple_graph().output_deadline("c") is None

    def test_uniform_deadline_covers_all_pairs(self):
        g = (
            GraphBuilder()
            .task("i1", 1).task("i2", 1).task("o1", 1).task("o2", 1)
            .edge("i1", "o1").edge("i2", "o2")
            .build()
        )
        g.set_uniform_e2e_deadline(50.0)
        assert len(g.e2e_deadlines()) == 4


class TestStructure:
    def test_topological_order(self):
        order = simple_graph().topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detection(self):
        g = TaskGraph()
        for tid in "abc":
            g.add_task(Task(id=tid, wcet={"e": 1.0}))
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert not g.is_acyclic()
        with pytest.raises(CycleError):
            g.topological_order()

    def test_subgraph_induced(self):
        g = simple_graph()
        g.set_e2e_deadline("a", "c", 90.0)
        sub = g.subgraph(["a", "b"])
        assert sub.n_tasks == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("b", "c")
        assert sub.e2e_deadlines() == {}

    def test_copy_is_independent(self):
        g = simple_graph()
        g2 = g.copy()
        g2.add_task(Task(id="d", wcet={"e1": 1.0}))
        assert "d" not in g
        assert g2.n_edges == g.n_edges

    def test_to_networkx(self):
        nxg = simple_graph().to_networkx()
        assert set(nxg.nodes) == {"a", "b", "c"}
        assert nxg.edges["a", "b"]["weight"] == 3.0
