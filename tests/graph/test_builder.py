"""Unit tests for GraphBuilder and the canned shapes."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    chain_graph,
    diamond_graph,
    fork_join_graph,
    layered_graph,
)


class TestBuilder:
    def test_scalar_wcet_uses_default_class(self):
        g = GraphBuilder("cpu").task("a", 10).build()
        assert g.task("a").wcet_on("cpu") == 10.0

    def test_mapping_wcet(self):
        g = GraphBuilder().task("a", {"x": 1.0, "y": 2.0}).build()
        assert g.task("a").eligible_classes() == {"x", "y"}

    def test_builder_is_single_use(self):
        b = GraphBuilder().task("a", 1)
        b.build()
        with pytest.raises(GraphError):
            b.task("b", 1)
        with pytest.raises(GraphError):
            b.build()

    def test_chaining(self):
        g = (
            GraphBuilder()
            .task("a", 1).task("b", 2)
            .edge("a", "b", message=5)
            .e2e("a", "b", 10)
            .build()
        )
        assert g.message_size("a", "b") == 5.0
        assert g.e2e_deadline("a", "b") == 10.0

    def test_resources_attached(self):
        g = GraphBuilder().task("a", 1, resources=["bus", "db"]).build()
        assert g.task("a").resources == {"bus", "db"}


class TestShapes:
    def test_chain(self):
        g = chain_graph([1, 2, 3], e2e_deadline=20, message=1.5)
        assert g.n_tasks == 3
        assert g.n_edges == 2
        assert g.message_size("t0", "t1") == 1.5
        assert g.e2e_deadline("t0", "t2") == 20.0

    def test_chain_requires_tasks(self):
        with pytest.raises(GraphError):
            chain_graph([])

    def test_fork_join(self):
        g = fork_join_graph([[1, 2], [3]], e2e_deadline=30)
        assert g.input_tasks() == ["src"]
        assert g.output_tasks() == ["sink"]
        assert g.n_tasks == 2 + 3
        # both branches rejoin
        assert set(g.predecessors("sink")) == {"b0_1", "b1_0"}

    def test_fork_join_rejects_empty_branch(self):
        with pytest.raises(GraphError):
            fork_join_graph([[1], []])

    def test_diamond(self):
        g = diamond_graph(e2e_deadline=60)
        assert g.n_tasks == 4
        assert set(g.successors("top")) == {"left", "right"}

    def test_layered_fully_connected(self):
        g = layered_graph([[1, 1], [2, 2, 2]], e2e_deadline=99)
        assert g.n_edges == 2 * 3
        assert len(g.e2e_deadlines()) == 2 * 3

    def test_layered_rejects_empty_layer(self):
        with pytest.raises(GraphError):
            layered_graph([[1], []])
