"""Unit tests for DOT export."""

from repro.graph import to_dot


def test_dot_contains_nodes_and_edges(chain3):
    dot = to_dot(chain3)
    assert dot.startswith("digraph")
    for tid in ("a", "b", "c"):
        assert f'"{tid}"' in dot
    assert '"a" -> "b"' in dot


def test_dot_includes_windows_when_given(chain3):
    dot = to_dot(chain3, windows={"a": (0.0, 25.0)})
    assert "w=[0,25]" in dot


def test_dot_labels_message_sizes(hetero_graph):
    dot = to_dot(hetero_graph)
    assert 'label="2"' in dot


def test_dot_escapes_quotes():
    from repro.graph import GraphBuilder

    g = GraphBuilder().task('we"ird', 1).build()
    dot = to_dot(g)
    assert '\\"' in dot
