"""Unit tests for task-graph transformations."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    chain_graph,
    contract_chains,
    longest_path_length,
    relabel,
    scale_wcets,
)


class TestContractChains:
    def test_pure_chain_collapses_to_one_task(self):
        g = chain_graph([10, 20, 30], e2e_deadline=120.0)
        out, mapping = contract_chains(g)
        assert out.n_tasks == 1
        merged = out.task_ids()[0]
        assert out.task(merged).mean_wcet() == 60.0
        assert set(mapping.values()) == {merged}
        # the E-T-E deadline survives on the merged endpoints
        assert out.e2e_deadline(merged, merged) == 120.0

    def test_diamond_untouched(self, diamond):
        out, mapping = contract_chains(diamond)
        assert out.n_tasks == 4
        assert mapping == {t: t for t in diamond.task_ids()}

    def test_mixed_graph_contracts_only_runs(self):
        # src -> a -> b -> sink and src -> c -> sink: a+b merge.
        g = (
            GraphBuilder()
            .task("src", 5).task("a", 10).task("b", 10)
            .task("c", 10).task("sink", 5)
            .edge("src", "a").edge("a", "b").edge("b", "sink")
            .edge("src", "c").edge("c", "sink")
            .build()
        )
        out, mapping = contract_chains(g)
        assert out.n_tasks == 4
        assert mapping["a"] == mapping["b"] == "a+b"
        assert out.task("a+b").mean_wcet() == 20.0

    def test_path_lengths_preserved(self):
        g = (
            GraphBuilder()
            .task("s", 5).task("x", 10).task("y", 15).task("t", 5)
            .edge("s", "x").edge("x", "y").edge("y", "t")
            .build()
        )
        before = longest_path_length(g, lambda t: g.task(t).mean_wcet())
        out, _ = contract_chains(g)
        after = longest_path_length(out, lambda t: out.task(t).mean_wcet())
        assert before == after

    def test_per_class_wcets_summed(self):
        g = (
            GraphBuilder()
            .task("a", {"x": 10.0, "y": 20.0})
            .task("b", {"x": 5.0, "y": 7.0})
            .edge("a", "b")
            .build()
        )
        out, _ = contract_chains(g)
        merged = out.task("a+b")
        assert merged.wcet_on("x") == 15.0
        assert merged.wcet_on("y") == 27.0

    def test_differing_eligibility_blocks_merge(self):
        g = (
            GraphBuilder()
            .task("a", {"x": 10.0})
            .task("b", {"y": 5.0})
            .edge("a", "b")
            .build()
        )
        out, _ = contract_chains(g)
        assert out.n_tasks == 2

    def test_resources_unioned(self):
        g = (
            GraphBuilder()
            .task("a", 10, resources=["r1"])
            .task("b", 10, resources=["r2"])
            .edge("a", "b")
            .build()
        )
        out, _ = contract_chains(g)
        assert out.task("a+b").resources == {"r1", "r2"}

    def test_contracted_graph_schedules(self, uni2):
        from repro.core import distribute_deadlines
        from repro.sched import schedule_edf, validate_schedule

        g = chain_graph([10, 20, 15], e2e_deadline=90.0)
        out, _ = contract_chains(g)
        a = distribute_deadlines(out, uni2, "PURE")
        s = schedule_edf(out, uni2, a)
        assert s.feasible
        assert validate_schedule(s, out, uni2, a) == []


class TestScaleWcets:
    def test_scales_every_class(self, hetero_graph):
        out = scale_wcets(hetero_graph, 2.0)
        assert out.task("a").wcet_on("fast") == 16.0
        assert out.task("a").wcet_on("slow") == 24.0
        # structure untouched
        assert sorted(out.edges()) == sorted(hetero_graph.edges())
        assert out.e2e_deadlines() == hetero_graph.e2e_deadlines()

    def test_nonpositive_factor_rejected(self, hetero_graph):
        with pytest.raises(GraphError):
            scale_wcets(hetero_graph, 0.0)


class TestRelabel:
    def test_mapping_rename(self, chain3):
        out = relabel(chain3, {"a": "alpha"})
        assert "alpha" in out and "a" not in out
        assert out.has_edge("alpha", "b")
        assert out.e2e_deadline("alpha", "c") == 90.0

    def test_callable_rename(self, chain3):
        out = relabel(chain3, lambda t: f"app1.{t}")
        assert "app1.b" in out
        assert out.has_edge("app1.a", "app1.b")

    def test_collision_rejected(self, chain3):
        with pytest.raises(GraphError):
            relabel(chain3, lambda t: "same")

    def test_compose_two_applications(self, chain3):
        # namespacing enables graph composition without id clashes
        g1 = relabel(chain3, lambda t: f"app1.{t}")
        g2 = relabel(chain3, lambda t: f"app2.{t}")
        combined = g1.copy()
        for t in g2.tasks():
            combined.add_task(t)
        for s, d, m in g2.edges():
            combined.add_edge(s, d, m)
        assert combined.n_tasks == 6
        assert combined.is_acyclic()
