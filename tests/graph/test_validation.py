"""Unit tests for task-graph validation."""

import pytest

from repro.errors import ValidationError
from repro.graph import GraphBuilder, Task, TaskGraph, check_graph, validate_graph


class TestValidateGraph:
    def test_valid_graph_passes(self, chain3):
        report = validate_graph(chain3)
        assert report.ok
        assert report.warnings == []

    def test_empty_graph_fails(self):
        report = validate_graph(TaskGraph())
        assert not report.ok

    def test_cycle_fails(self):
        g = TaskGraph()
        for tid in "ab":
            g.add_task(Task(id=tid, wcet={"e": 1.0}))
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        report = validate_graph(g)
        assert not report.ok
        assert "cycle" in report.errors[0]

    def test_e2e_pair_must_anchor_at_input_and_output(self):
        g = (
            GraphBuilder()
            .task("a", 1).task("b", 1).task("c", 1)
            .edge("a", "b").edge("b", "c")
            .build()
        )
        g.set_e2e_deadline("b", "c", 10.0)  # b is not an input task
        report = validate_graph(g)
        assert any("not an input task" in e for e in report.errors)

    def test_disconnected_pair_warns(self):
        g = (
            GraphBuilder()
            .task("i1", 1).task("o1", 1).task("i2", 1).task("o2", 1)
            .edge("i1", "o1").edge("i2", "o2")
            .e2e("i1", "o2", 10)
            .build()
        )
        report = validate_graph(g)
        assert report.ok
        assert any("no path connects" in w for w in report.warnings)

    def test_deadline_below_min_work_warns(self, chain3):
        chain3.set_e2e_deadline("a", "c", 9.0)  # min work is 45
        # min over pairs: the new tighter pair triggers the warning
        report = validate_graph(chain3)
        assert any("below the minimum" in w for w in report.warnings)

    def test_uncovered_output_warns_when_required(self):
        g = GraphBuilder().task("a", 1).task("b", 1).edge("a", "b").build()
        report = validate_graph(g, require_e2e=True)
        assert any("not covered" in w for w in report.warnings)

    def test_check_graph_raises(self):
        with pytest.raises(ValidationError):
            check_graph(TaskGraph())

    def test_raise_if_invalid_passes_warnings(self, chain3):
        chain3.set_e2e_deadline("a", "c", 9.0)
        validate_graph(chain3).raise_if_invalid()  # warnings don't raise
