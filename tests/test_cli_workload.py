"""Unit tests for the repro-workload CLI."""

from repro.cli import workload_main


class TestWorkloadCli:
    def test_single_metric_run(self, capsys):
        code = workload_main(["--seed", "3", "--m", "3"])
        out = capsys.readouterr().out
        assert "avg parallelism" in out
        assert "makespan" in out
        assert code in (0, 3)  # feasible or a clean infeasible exit

    def test_all_metrics_comparison(self, capsys):
        code = workload_main(["--seed", "3", "--all-metrics"])
        assert code == 0
        out = capsys.readouterr().out
        for metric in ("PURE", "NORM", "ADAPT-G", "ADAPT-L"):
            assert metric in out

    def test_exports(self, tmp_path, capsys):
        workload_main(
            ["--seed", "1", "--out-dir", str(tmp_path)]
        )
        assert (tmp_path / "graph.json").exists()
        assert (tmp_path / "graph.dot").exists()
        assert (tmp_path / "schedule.csv").exists()

    def test_load_graph_round_trip(self, tmp_path, capsys):
        # export a graph, then feed it back in
        workload_main(["--seed", "5", "--out-dir", str(tmp_path)])
        capsys.readouterr()
        code = workload_main(
            ["--graph", str(tmp_path / "graph.json"), "--m", "4"]
        )
        out = capsys.readouterr().out
        assert "tasks" in out
        assert code in (0, 3)

    def test_infeasible_workload_prints_witness(self, capsys):
        # OLR far below anything schedulable: the screen should fire
        code = workload_main(["--seed", "2", "--olr", "0.2", "--m", "2"])
        out = capsys.readouterr().out
        assert code == 3
        assert "analytical screen" in out or "INFEASIBLE" in out

    def test_error_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = workload_main(["--graph", str(bad)])
        assert code == 1
        assert "error" in capsys.readouterr().err
