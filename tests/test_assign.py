"""Unit tests for clustering assignment and fixed-placement scheduling."""

import pytest

from repro.assign import (
    FixedAssignmentEdfScheduler,
    TaskAssignment,
    cluster_assignment,
    exact_estimates,
)
from repro.core import distribute_deadlines
from repro.errors import PlatformError, SchedulingError
from repro.graph import GraphBuilder
from repro.rng import make_rng
from repro.sched import validate_schedule
from repro.system import Platform, Processor, ProcessorClass, identical_platform
from repro.workload import WorkloadParams, generate_workload


class TestClusterAssignment:
    def test_every_task_assigned_to_eligible_processor(self):
        wl = generate_workload(WorkloadParams(m=3), make_rng(0))
        assignment = cluster_assignment(wl.graph, wl.platform)
        for task in wl.graph.tasks():
            proc = assignment.processor_of(task.id)
            assert task.is_eligible(wl.platform.class_of(proc))

    def test_heavy_communicators_colocated(self):
        # One heavy edge, several light ones: the heavy pair must share
        # a processor.
        g = (
            GraphBuilder()
            .task("a", 10).task("b", 10).task("c", 10).task("d", 10)
            .edge("a", "b", message=100)
            .edge("a", "c", message=1)
            .edge("c", "d", message=1)
            .build()
        )
        p = identical_platform(2)
        assignment = cluster_assignment(g, p)
        assert assignment.processor_of("a") == assignment.processor_of("b")
        assert assignment.zeroed_traffic >= 100.0

    def test_balance_cap_limits_cluster_growth(self):
        g = (
            GraphBuilder()
            .task("a", 10).task("b", 10).task("c", 10).task("d", 10)
            .edge("a", "b", message=10)
            .edge("b", "c", message=10)
            .edge("c", "d", message=10)
            .build()
        )
        p = identical_platform(2)
        tight = cluster_assignment(g, p, balance_factor=1.0)
        procs = {tight.processor_of(t) for t in g.task_ids()}
        assert len(procs) == 2  # cap of 20 forces a split over both

    def test_eligibility_blocks_merging(self):
        g = (
            GraphBuilder()
            .task("a", {"fast": 10.0})
            .task("b", {"slow": 10.0})
            .edge("a", "b", message=100)
            .build()
        )
        p = Platform(
            [Processor("p1", "fast"), Processor("p2", "slow")],
            [ProcessorClass("fast"), ProcessorClass("slow")],
        )
        assignment = cluster_assignment(g, p)
        assert assignment.processor_of("a") == "p1"
        assert assignment.processor_of("b") == "p2"
        assert assignment.n_clusters == 2

    def test_bad_balance_factor(self):
        g = GraphBuilder().task("a", 1).build()
        with pytest.raises(PlatformError):
            cluster_assignment(g, identical_platform(1), balance_factor=0.0)

    def test_unassigned_lookup_raises(self):
        assignment = TaskAssignment({}, 0, 0.0)
        with pytest.raises(PlatformError):
            assignment.processor_of("ghost")

    def test_tasks_on(self):
        assignment = TaskAssignment({"a": "p1", "b": "p1", "c": "p2"}, 2, 0.0)
        assert assignment.tasks_on("p1") == ["a", "b"]


class TestExactEstimates:
    def test_collapses_to_assigned_class(self):
        g = (
            GraphBuilder()
            .task("a", {"fast": 8.0, "slow": 12.0})
            .build()
        )
        p = Platform(
            [Processor("p1", "fast"), Processor("p2", "slow")],
            [ProcessorClass("fast"), ProcessorClass("slow")],
        )
        fast = TaskAssignment({"a": "p1"}, 1, 0.0)
        slow = TaskAssignment({"a": "p2"}, 1, 0.0)
        assert exact_estimates(g, p, fast)["a"] == 8.0
        assert exact_estimates(g, p, slow)["a"] == 12.0


class TestFixedAssignmentScheduler:
    def test_placements_honour_the_assignment(self):
        wl = generate_workload(WorkloadParams(m=3), make_rng(1))
        fixed = cluster_assignment(wl.graph, wl.platform)
        estimates = exact_estimates(wl.graph, wl.platform, fixed)
        windows = distribute_deadlines(
            wl.graph, wl.platform, "ADAPT-L", estimates=estimates
        )
        sched = FixedAssignmentEdfScheduler(
            fixed, continue_on_miss=True
        ).schedule(wl.graph, wl.platform, windows)
        assert len(sched.entries) == wl.graph.n_tasks
        for entry in sched:
            assert entry.processor == fixed.processor_of(entry.task_id)
        problems = validate_schedule(
            sched, wl.graph, wl.platform, windows, check_deadlines=False
        )
        assert problems == [], problems

    def test_ineligible_fixed_placement_raises(self):
        g = GraphBuilder().task("a", {"fast": 8.0}).build()
        p = Platform(
            [Processor("p1", "fast"), Processor("p2", "slow")],
            [ProcessorClass("fast"), ProcessorClass("slow")],
        )
        bad = TaskAssignment({"a": "p2"}, 1, 0.0)
        from repro.core import DeadlineAssignment, TaskWindow

        windows = DeadlineAssignment(
            windows={"a": TaskWindow(0.0, 50.0, 50.0)}
        )
        with pytest.raises(SchedulingError):
            FixedAssignmentEdfScheduler(bad).schedule(g, p, windows)


class TestLocalityTrials:
    def test_strict_locality_trial_runs(self):
        from repro.experiments import TrialConfig, run_trial

        fast = WorkloadParams(m=3, n_tasks_range=(12, 16), depth_range=(4, 6))
        out = run_trial(
            TrialConfig(workload=fast, locality="strict"), seed=3
        )
        assert isinstance(out.success, bool)

    def test_unknown_locality_rejected(self):
        from repro.errors import ExperimentError
        from repro.experiments import TrialConfig

        with pytest.raises(ExperimentError):
            TrialConfig(locality="psychic")

    def test_abl_locality_registered(self):
        from repro.experiments import get_figure_spec

        spec = get_figure_spec("abl-locality")
        assert spec.config_for(0.8, "strict (clustered)").locality == "strict"
        assert (
            spec.config_for(0.8, "relaxed (free placement)").locality
            == "relaxed"
        )
