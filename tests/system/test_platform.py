"""Unit tests for the Platform model (§3.1)."""

import pytest

from repro.errors import EligibilityError, PlatformError, SerializationError
from repro.graph import Task
from repro.system import (
    Platform,
    Processor,
    ProcessorClass,
    SharedBus,
    identical_platform,
)
from repro.system.platform import platform_from_dict, platform_to_dict


class TestConstruction:
    def test_needs_processors_and_classes(self):
        with pytest.raises(PlatformError):
            Platform([], [ProcessorClass("e1")])
        with pytest.raises(PlatformError):
            Platform([Processor("p1", "e1")], [])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(PlatformError):
            Platform(
                [Processor("p1", "e1"), Processor("p1", "e1")],
                [ProcessorClass("e1")],
            )
        with pytest.raises(PlatformError):
            Platform(
                [Processor("p1", "e1")],
                [ProcessorClass("e1"), ProcessorClass("e1")],
            )

    def test_unknown_class_reference_rejected(self):
        with pytest.raises(PlatformError):
            Platform([Processor("p1", "eX")], [ProcessorClass("e1")])

    def test_identical_platform_helper(self):
        p = identical_platform(4)
        assert p.m == 4
        assert p.m_e == 1
        assert isinstance(p.comm, SharedBus)
        with pytest.raises(PlatformError):
            identical_platform(0)


class TestQueries:
    def test_class_of(self, hetero_platform):
        assert hetero_platform.class_of("p1") == "fast"
        assert hetero_platform.class_of("p2") == "slow"
        with pytest.raises(PlatformError):
            hetero_platform.class_of("zzz")

    def test_used_class_ids(self):
        # A declared but uninstantiated class is not "used".
        p = Platform(
            [Processor("p1", "e1")],
            [ProcessorClass("e1"), ProcessorClass("e2")],
        )
        assert p.used_class_ids() == ["e1"]

    def test_eligible_processors(self, hetero_platform):
        t = Task(id="t", wcet={"slow": 10.0})
        procs = [p.id for p in hetero_platform.eligible_processors(t)]
        assert procs == ["p2", "p3"]

    def test_require_eligible_raises_when_none(self, hetero_platform):
        t = Task(id="t", wcet={"gpu": 10.0})
        with pytest.raises(EligibilityError):
            hetero_platform.require_eligible(t)

    def test_wcet_of(self, hetero_platform):
        t = Task(id="t", wcet={"fast": 8.0, "slow": 12.0})
        assert hetero_platform.wcet_of(t, "p1") == 8.0
        assert hetero_platform.wcet_of(t, "p2") == 12.0

    def test_wcet_of_ineligible_raises(self, hetero_platform):
        t = Task(id="t", wcet={"fast": 8.0})
        with pytest.raises(EligibilityError):
            hetero_platform.wcet_of(t, "p2")

    def test_communication_cost_delegates_to_model(self, hetero_platform):
        assert hetero_platform.communication_cost("p1", "p2", 3.0) == 3.0
        assert hetero_platform.communication_cost("p1", "p1", 3.0) == 0.0


class TestSerialization:
    def test_round_trip(self, hetero_platform):
        p2 = platform_from_dict(platform_to_dict(hetero_platform))
        assert p2.m == hetero_platform.m
        assert p2.m_e == hetero_platform.m_e
        assert p2.class_of("p1") == "fast"
        assert isinstance(p2.comm, SharedBus)

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError):
            platform_from_dict({"format": "nope"})

    def test_unknown_comm_kind_rejected(self, hetero_platform):
        doc = platform_to_dict(hetero_platform)
        doc["comm"] = {"kind": "warp-drive"}
        with pytest.raises(SerializationError):
            platform_from_dict(doc)
