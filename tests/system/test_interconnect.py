"""Unit tests for communication-cost models (§3.1)."""

import pytest

from repro.errors import PlatformError
from repro.system import ContentionBus, LinkTopology, SharedBus, ZeroCost


class TestSharedBus:
    def test_paper_model_one_unit_per_item(self):
        bus = SharedBus(1.0)
        assert bus.cost("p1", "p2", 5.0) == 5.0

    def test_intra_processor_is_free(self):
        assert SharedBus(1.0).cost("p1", "p1", 100.0) == 0.0

    def test_custom_delay(self):
        assert SharedBus(2.5).cost("p1", "p2", 4.0) == 10.0

    def test_negative_delay_rejected(self):
        with pytest.raises(PlatformError):
            SharedBus(-1.0)

    def test_transfer_is_nominal(self):
        bus = SharedBus(1.0)
        assert bus.transfer("p1", "p2", 3.0, ready=10.0) == 13.0
        # stateless: a second transfer doesn't queue
        assert bus.transfer("p1", "p2", 3.0, ready=10.0) == 13.0


class TestZeroCost:
    def test_always_free(self):
        assert ZeroCost().cost("p1", "p2", 100.0) == 0.0


class TestLinkTopology:
    def topo(self):
        # p1 -- p2 -- p3 with a slow direct p1--p3 shortcut
        return LinkTopology(
            [("p1", "p2", 1.0), ("p2", "p3", 1.0), ("p1", "p3", 5.0)]
        )

    def test_cheapest_route_wins(self):
        t = self.topo()
        assert t.per_item_delay("p1", "p3") == 2.0  # via p2, not direct 5
        assert t.cost("p1", "p3", 4.0) == 8.0

    def test_symmetric(self):
        t = self.topo()
        assert t.per_item_delay("p3", "p1") == t.per_item_delay("p1", "p3")

    def test_intra_processor_free(self):
        assert self.topo().cost("p1", "p1", 9.0) == 0.0

    def test_disconnected_raises(self):
        t = LinkTopology([("p1", "p2", 1.0), ("p3", "p4", 1.0)])
        with pytest.raises(PlatformError):
            t.per_item_delay("p1", "p3")

    def test_duplicate_links_keep_cheapest(self):
        t = LinkTopology([("a", "b", 5.0), ("a", "b", 2.0)])
        assert t.per_item_delay("a", "b") == 2.0

    def test_self_link_rejected(self):
        with pytest.raises(PlatformError):
            LinkTopology([("a", "a", 1.0)])

    def test_negative_delay_rejected(self):
        with pytest.raises(PlatformError):
            LinkTopology([("a", "b", -1.0)])


class TestContentionBus:
    def test_serializes_transfers(self):
        bus = ContentionBus(1.0)
        # First transfer: ready at 0, takes 5 -> done at 5.
        assert bus.transfer("p1", "p2", 5.0, ready=0.0) == 5.0
        # Second transfer ready at 2 must queue behind the first.
        assert bus.transfer("p2", "p3", 5.0, ready=2.0) == 10.0

    def test_idle_gap_not_reserved(self):
        bus = ContentionBus(1.0)
        bus.transfer("p1", "p2", 2.0, ready=0.0)  # busy [0, 2)
        # Ready long after the bus freed: starts at its ready time.
        assert bus.transfer("p1", "p2", 2.0, ready=10.0) == 12.0

    def test_reset_clears_state(self):
        bus = ContentionBus(1.0)
        bus.transfer("p1", "p2", 5.0, ready=0.0)
        bus.reset()
        assert bus.busy_until == 0.0
        assert bus.transfer("p1", "p2", 1.0, ready=0.0) == 1.0

    def test_intra_processor_bypasses_bus(self):
        bus = ContentionBus(1.0)
        assert bus.transfer("p1", "p1", 50.0, ready=3.0) == 3.0
        assert bus.busy_until == 0.0

    def test_empty_message_bypasses_bus(self):
        bus = ContentionBus(1.0)
        assert bus.transfer("p1", "p2", 0.0, ready=3.0) == 3.0
        assert bus.busy_until == 0.0
