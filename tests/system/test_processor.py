"""Unit tests for processor and processor-class models (§3.1)."""

import pytest

from repro.errors import ValidationError
from repro.system import Processor, ProcessorClass


class TestProcessorClass:
    def test_requires_id(self):
        with pytest.raises(ValidationError):
            ProcessorClass("")

    def test_requires_positive_speed(self):
        with pytest.raises(ValidationError):
            ProcessorClass("e1", speed_factor=0.0)

    def test_scaled_time_uniform_model(self):
        fast = ProcessorClass("fast", speed_factor=2.0)
        assert fast.scaled_time(10.0) == 5.0

    def test_default_speed_is_identity(self):
        assert ProcessorClass("e1").scaled_time(7.0) == 7.0


class TestProcessor:
    def test_requires_ids(self):
        with pytest.raises(ValidationError):
            Processor("", "e1")
        with pytest.raises(ValidationError):
            Processor("p1", "")

    def test_is_frozen(self):
        p = Processor("p1", "e1")
        with pytest.raises(AttributeError):
            p.cls = "e2"
