"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GraphError,
            errors.CycleError,
            errors.ValidationError,
            errors.PlatformError,
            errors.EligibilityError,
            errors.DistributionError,
            errors.MetricError,
            errors.SchedulingError,
            errors.InfeasibleError,
            errors.WorkloadError,
            errors.ExperimentError,
            errors.SerializationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_cycle_is_graph_error(self):
        assert issubclass(errors.CycleError, errors.GraphError)

    def test_eligibility_is_platform_error(self):
        assert issubclass(errors.EligibilityError, errors.PlatformError)

    def test_infeasible_is_scheduling_error(self):
        assert issubclass(errors.InfeasibleError, errors.SchedulingError)

    def test_one_catch_covers_the_library(self):
        # the documented catch-all pattern
        try:
            raise errors.WorkloadError("boom")
        except errors.ReproError as exc:
            assert "boom" in str(exc)

    def test_all_exports_exist(self):
        for name in errors.__all__:
            assert hasattr(errors, name)
