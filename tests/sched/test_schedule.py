"""Unit tests for the Schedule container and quality measures (§4.2)."""

import pytest

from repro.errors import SchedulingError
from repro.sched import Schedule, ScheduledTask


def entry(tid, proc, start, finish, arrival=0.0, deadline=100.0):
    return ScheduledTask(
        task_id=tid,
        processor=proc,
        start=start,
        finish=finish,
        arrival=arrival,
        absolute_deadline=deadline,
    )


@pytest.fixture
def sched():
    s = Schedule(scheduler_name="TEST")
    s.entries["a"] = entry("a", "p1", 0, 10, deadline=12)
    s.entries["b"] = entry("b", "p2", 0, 20, deadline=25)
    s.entries["c"] = entry("c", "p1", 10, 30, deadline=28)
    return s


class TestScheduledTask:
    def test_execution_time(self):
        assert entry("a", "p1", 5, 15).execution_time == 10

    def test_lateness_sign(self):
        assert entry("a", "p1", 0, 10, deadline=12).lateness == -2
        assert entry("a", "p1", 0, 30, deadline=12).lateness == 18

    def test_meets_deadline(self):
        assert entry("a", "p1", 0, 12, deadline=12).meets_deadline
        assert not entry("a", "p1", 0, 12.5, deadline=12).meets_deadline


class TestMeasures:
    def test_makespan(self, sched):
        assert sched.makespan == 30

    def test_makespan_empty(self):
        assert Schedule().makespan == 0.0

    def test_max_lateness(self, sched):
        assert sched.max_lateness() == 2  # task c: 30 - 28

    def test_max_lateness_empty_raises(self):
        with pytest.raises(SchedulingError):
            Schedule().max_lateness()

    def test_missed_tasks(self, sched):
        assert sched.missed_tasks() == ["c"]

    def test_tasks_on_sorted_by_start(self, sched):
        rows = sched.tasks_on("p1")
        assert [e.task_id for e in rows] == ["a", "c"]

    def test_processor_load(self, sched):
        assert sched.processor_load() == {"p1": 30.0, "p2": 20.0}

    def test_utilization(self, sched):
        assert sched.utilization() == pytest.approx(50.0 / 60.0)
        assert sched.utilization(m=4) == pytest.approx(50.0 / 120.0)

    def test_utilization_empty(self):
        assert Schedule().utilization() == 0.0


class TestAccessors:
    def test_entry_lookup(self, sched):
        assert sched.processor_of("a") == "p1"
        assert sched.start_time("c") == 10
        assert sched.finish_time("b") == 20
        with pytest.raises(SchedulingError):
            sched.entry("zzz")

    def test_container_protocol(self, sched):
        assert "a" in sched and len(sched) == 3
        assert {e.task_id for e in sched} == {"a", "b", "c"}


class TestSerialization:
    def test_round_trip(self, sched):
        sched.feasible = False
        sched.failed_task = "c"
        sched.failure_reason = "late"
        s2 = Schedule.from_dict(sched.to_dict())
        assert s2.scheduler_name == "TEST"
        assert not s2.feasible
        assert s2.failed_task == "c"
        assert s2.entry("b") == sched.entry("b")
        assert len(s2) == 3
