"""Unit tests for the preemptive EDF extension (§7.3)."""

import pytest

from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.errors import SchedulingError
from repro.graph import GraphBuilder, chain_graph
from repro.sched import schedule_edf, schedule_preemptive_edf
from repro.system import identical_platform


def windows(spec):
    return DeadlineAssignment(
        windows={tid: TaskWindow(a, d, a + d) for tid, (a, d) in spec.items()}
    )


class TestBasics:
    def test_chain_meets_deadlines(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        s = schedule_preemptive_edf(chain3, uni2, a)
        assert s.feasible
        assert len(s.entries) == 3
        # precedence respected: b completes after a
        assert s.finish_time("b") > s.finish_time("a")

    def test_rejects_heterogeneous_platform(self, hetero_graph, hetero_platform):
        a = distribute_deadlines(hetero_graph, hetero_platform, "PURE")
        with pytest.raises(SchedulingError):
            schedule_preemptive_edf(hetero_graph, hetero_platform, a)

    def test_ineligible_task_fails_gracefully(self, uni2):
        g = GraphBuilder().task("x", {"gpu": 5.0}).build()
        s = schedule_preemptive_edf(g, uni2, windows({"x": (0, 50)}))
        assert not s.feasible
        assert "ineligible" in s.failure_reason


class TestPreemptionAdvantage:
    def test_preemption_rescues_tight_late_arrival(self):
        """A classic non-preemptive anomaly the preemptive policy fixes.

        One processor: a long job L with a loose deadline starts first;
        an urgent job U arrives while L runs and cannot wait for L's
        completion.  Non-preemptive EDF misses U; preemptive EDF
        suspends L and meets both.
        """
        g = GraphBuilder().task("L", 20).task("U", 5).build()
        p = identical_platform(1)
        # U releases at 10 with deadline 16; L spans [0, 30].  The
        # non-preemptive list scheduler commits U first (earlier
        # absolute deadline), idles the processor until 10, and then
        # cannot fit L by 30.  Preemptive EDF runs L at 0, suspends it
        # for U at 10, and finishes L at 25.
        a = windows({"L": (0, 30), "U": (10, 6)})
        nonpre = schedule_edf(g, p, a)
        assert not nonpre.feasible
        pre = schedule_preemptive_edf(g, p, a)
        assert pre.feasible
        assert pre.finish_time("U") == pytest.approx(15.0)
        assert pre.finish_time("L") == pytest.approx(25.0)

    def test_m_processors_run_m_jobs(self, uni2):
        g = (
            GraphBuilder()
            .task("x", 10).task("y", 10).task("z", 10)
            .build()
        )
        a = windows({"x": (0, 30), "y": (0, 30), "z": (0, 30)})
        s = schedule_preemptive_edf(g, uni2, a)
        assert s.feasible
        # makespan 20: two run immediately, the third follows
        assert s.makespan == pytest.approx(20.0)


class TestDeadlineMisses:
    def test_overload_reports_failure(self):
        g = GraphBuilder().task("x", 10).task("y", 10).build()
        p = identical_platform(1)
        a = windows({"x": (0, 12), "y": (0, 12)})
        s = schedule_preemptive_edf(g, p, a)
        assert not s.feasible
        assert s.failed_task in {"x", "y"}

    def test_deterministic(self, diamond, uni2):
        a = distribute_deadlines(diamond, uni2, "PURE")
        s1 = schedule_preemptive_edf(diamond, uni2, a)
        s2 = schedule_preemptive_edf(diamond, uni2, a)
        assert s1.to_dict() == s2.to_dict()


class TestCommunication:
    def test_cross_processor_delay_charged(self, uni2):
        g = (
            GraphBuilder()
            .task("a", 10).task("b", 10)
            .edge("a", "b", message=5)
            .build()
        )
        a = windows({"a": (0, 20), "b": (0, 60)})
        s = schedule_preemptive_edf(g, uni2, a)
        assert s.feasible
        # release of b = finish(a) + worst-case delay (5 items)
        assert s.start_time("b") >= 15.0 - 1e-9
