"""Unit tests for the ASCII Gantt renderer."""

from repro.core import distribute_deadlines
from repro.sched import Schedule, render_gantt, schedule_edf


def test_empty_schedule(uni2):
    assert "empty" in render_gantt(Schedule(), uni2)


def test_renders_all_processors(chain3, uni2):
    a = distribute_deadlines(chain3, uni2, "PURE")
    s = schedule_edf(chain3, uni2, a)
    out = render_gantt(s, uni2)
    assert "p1" in out and "p2" in out
    assert "feasible" in out


def test_marks_infeasible(chain3, uni2):
    from repro.core import DeadlineAssignment, TaskWindow

    a = DeadlineAssignment(
        windows={
            "a": TaskWindow(0.0, 1.0, 1.0),
            "b": TaskWindow(1.0, 1.0, 2.0),
            "c": TaskWindow(2.0, 1.0, 3.0),
        }
    )
    from repro.sched import EdfListScheduler

    s = EdfListScheduler(continue_on_miss=True).schedule(chain3, uni2, a)
    out = render_gantt(s, uni2)
    assert "INFEASIBLE" in out


def test_scales_to_width(chain3, uni2):
    a = distribute_deadlines(chain3, uni2, "PURE")
    s = schedule_edf(chain3, uni2, a)
    out = render_gantt(s, uni2, width=40)
    assert max(len(line) for line in out.splitlines()) <= 60
