"""Unit tests for time-driven dispatch tables (§3.3)."""

import pytest

from repro.core import distribute_deadlines
from repro.errors import SchedulingError
from repro.sched import (
    DispatchEntry,
    DispatchTable,
    build_dispatch_tables,
    idle_gaps,
    schedule_edf,
    total_idle,
)
from repro.system import identical_platform


@pytest.fixture
def tables(chain3, uni2):
    a = distribute_deadlines(chain3, uni2, "PURE")
    s = schedule_edf(chain3, uni2, a)
    return build_dispatch_tables(s, uni2, cycle_length=100.0), s


class TestDispatchTable:
    def test_entries_sorted_and_validated(self):
        t = DispatchTable(
            "p1",
            50.0,
            [DispatchEntry(20, 30, "b"), DispatchEntry(0, 10, "a")],
        )
        assert [e.task_id for e in t.entries] == ["a", "b"]

    def test_overlap_rejected(self):
        with pytest.raises(SchedulingError):
            DispatchTable(
                "p1",
                50.0,
                [DispatchEntry(0, 10, "a"), DispatchEntry(5, 15, "b")],
            )

    def test_overhang_rejected(self):
        with pytest.raises(SchedulingError):
            DispatchTable("p1", 50.0, [DispatchEntry(45, 55, "a")])

    def test_bad_cycle_rejected(self):
        with pytest.raises(SchedulingError):
            DispatchTable("p1", 0.0, [])

    def test_running_at_is_cyclic(self):
        t = DispatchTable("p1", 50.0, [DispatchEntry(10, 20, "a")])
        assert t.running_at(15.0) == "a"
        assert t.running_at(65.0) == "a"  # next cycle
        assert t.running_at(5.0) is None
        assert t.running_at(20.0) is None  # end-exclusive

    def test_utilization_and_gaps(self):
        t = DispatchTable(
            "p1",
            50.0,
            [DispatchEntry(10, 20, "a"), DispatchEntry(30, 40, "b")],
        )
        assert t.busy_time() == 20.0
        assert t.utilization() == pytest.approx(0.4)
        assert t.gaps() == [(0.0, 10.0), (20.0, 30.0), (40.0, 50.0)]

    def test_to_dict(self):
        t = DispatchTable("p1", 50.0, [DispatchEntry(0, 10, "a")])
        doc = t.to_dict()
        assert doc["processor"] == "p1"
        assert doc["entries"][0]["task"] == "a"


class TestBuildTables:
    def test_every_processor_gets_a_table(self, tables):
        built, sched = tables
        assert set(built) == {"p1", "p2"}
        names = {
            e.task_id for t in built.values() for e in t.entries
        }
        assert names == set(sched.entries)

    def test_tables_agree_with_schedule(self, tables):
        built, sched = tables
        for entry in sched:
            table = built[entry.processor]
            mid = (entry.start + entry.finish) / 2.0
            assert table.running_at(mid) == entry.task_id

    def test_default_cycle_covers_makespan(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        s = schedule_edf(chain3, uni2, a)
        built = build_dispatch_tables(s, uni2)
        assert all(t.cycle_length >= s.makespan for t in built.values())
        assert all(
            t.cycle_length == int(t.cycle_length) for t in built.values()
        )

    def test_too_short_cycle_rejected(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        s = schedule_edf(chain3, uni2, a)
        with pytest.raises(SchedulingError):
            build_dispatch_tables(s, uni2, cycle_length=10.0)

    def test_idle_accounting(self, tables):
        built, sched = tables
        gaps = idle_gaps(built)
        busy = sum(t.busy_time() for t in built.values())
        idle = total_idle(built)
        assert busy + idle == pytest.approx(2 * 100.0)
        gap_total = sum(
            b - a for proc in gaps.values() for a, b in proc
        )
        assert gap_total == pytest.approx(idle)

    def test_periodic_pipeline_dispatch(self, uni2):
        """A planning cycle's schedule becomes a repeating table."""
        from repro.graph import GraphBuilder
        from repro.periodic import expand_periodic_graph

        g = (
            GraphBuilder()
            .task("s", 10, period=80.0).task("t", 10, period=80.0)
            .edge("s", "t").e2e("s", "t", 60)
            .build()
        )
        unrolled = expand_periodic_graph(g, 160.0)
        a = distribute_deadlines(unrolled, uni2, "PURE")
        s = schedule_edf(unrolled, uni2, a)
        assert s.feasible
        built = build_dispatch_tables(s, uni2, cycle_length=160.0)
        # invocation 1 and 2 appear in the same cyclic program
        names = {e.task_id for t in built.values() for e in t.entries}
        assert {"s#1", "s#2", "t#1", "t#2"} <= names
