"""Edge-case tests for the EDF list scheduler's interaction paths."""

import pytest

from repro.core import DeadlineAssignment, TaskWindow
from repro.errors import SchedulingError
from repro.graph import GraphBuilder, Task, TaskGraph
from repro.sched import schedule_edf, validate_schedule
from repro.system import ContentionBus, identical_platform


def windows(spec):
    return DeadlineAssignment(
        windows={tid: TaskWindow(a, d, a + d) for tid, (a, d) in spec.items()}
    )


class TestContentionRecompute:
    def test_contended_transfer_pushes_start_and_respects_resources(self):
        """The recompute branch: bus contention moves the start past the
        nominal estimate while resource serialization still holds."""
        g = (
            GraphBuilder()
            .task("a1", 10).task("a2", 10)
            .task("b1", 10, resources=["db"])
            .task("b2", 10, resources=["db"])
            .edge("a1", "b1", message=10).edge("a2", "b1", message=10)
            .edge("a1", "b2", message=10).edge("a2", "b2", message=10)
            .build()
        )
        p = identical_platform(2)
        a = windows(
            {"a1": (0, 10), "a2": (0, 10), "b1": (10, 80), "b2": (10, 80)}
        )
        s = schedule_edf(g, p, a, comm=ContentionBus(1.0))
        assert s.feasible
        # the bus serialized one transfer (20 -> 30) and the shared
        # resource serialized the consumers on top of that
        b1, b2 = s.entry("b1"), s.entry("b2")
        first, second = sorted((b1, b2), key=lambda e: e.start)
        assert first.start >= 20.0 - 1e-9
        assert second.start >= first.finish - 1e-9
        assert validate_schedule(s, g, p, a) == []

    def test_contention_model_reset_between_runs(self):
        g = (
            GraphBuilder()
            .task("a", 10).task("b", 10)
            .edge("a", "b", message=10)
            .build()
        )
        p = identical_platform(1)
        a = windows({"a": (0, 10), "b": (10, 30)})
        bus = ContentionBus(1.0)
        s1 = schedule_edf(g, p, a, comm=bus)
        s2 = schedule_edf(g, p, a, comm=bus)
        assert s1.to_dict() == s2.to_dict()  # no leaked bus state


class TestStructuralGuards:
    def test_cyclic_graph_detected_via_stalled_queue(self):
        g = TaskGraph()
        for tid in "ab":
            g.add_task(Task(id=tid, wcet={"default": 1.0}))
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        a = windows({"a": (0, 10), "b": (0, 10)})
        with pytest.raises(SchedulingError):
            schedule_edf(g, identical_platform(1), a)

    def test_zero_message_crossing_processors_is_free(self):
        g = (
            GraphBuilder()
            .task("a", 10).task("blocker", 25).task("b", 10)
            .edge("a", "b", message=0)
            .edge("a", "blocker")
            .build()
        )
        p = identical_platform(2)
        a = windows({"a": (0, 12), "blocker": (10, 27), "b": (10, 30)})
        s = schedule_edf(g, p, a)
        assert s.feasible
        if s.processor_of("b") != s.processor_of("a"):
            assert s.start_time("b") == pytest.approx(
                max(10.0, s.finish_time("a"))
            )

    def test_single_task_graph(self):
        g = GraphBuilder().task("only", 5).build()
        s = schedule_edf(g, identical_platform(3), windows({"only": (0, 10)}))
        assert s.feasible
        assert s.makespan == 5.0
