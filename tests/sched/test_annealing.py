"""Unit tests for the simulated-annealing scheduler (cf. [15])."""

import pytest

from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.errors import SchedulingError
from repro.graph import GraphBuilder
from repro.sched import (
    SimulatedAnnealingScheduler,
    schedule_annealed,
    schedule_edf,
    validate_schedule,
)
from repro.system import identical_platform


def windows(spec):
    return DeadlineAssignment(
        windows={tid: TaskWindow(a, d, a + d) for tid, (a, d) in spec.items()}
    )


class TestBasics:
    def test_feasible_input_returns_immediately(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        s = schedule_annealed(chain3, uni2, a, iterations=10, seed=1)
        assert s.feasible
        assert s.scheduler_name == "SA-LIST"
        assert validate_schedule(s, chain3, uni2, a) == []

    def test_empty_graph_rejected(self, uni2):
        from repro.graph import TaskGraph

        with pytest.raises(SchedulingError):
            schedule_annealed(TaskGraph(), uni2, windows({}))

    def test_bad_parameters_rejected(self):
        with pytest.raises(SchedulingError):
            SimulatedAnnealingScheduler(iterations=-1)
        with pytest.raises(SchedulingError):
            SimulatedAnnealingScheduler(cooling=0.0)
        with pytest.raises(SchedulingError):
            SimulatedAnnealingScheduler(initial_temperature=0.0)

    def test_deterministic_given_seed(self, diamond, uni2):
        a = distribute_deadlines(diamond, uni2, "PURE")
        s1 = schedule_annealed(diamond, uni2, a, iterations=50, seed=9)
        s2 = schedule_annealed(diamond, uni2, a, iterations=50, seed=9)
        assert s1.to_dict() == s2.to_dict()


class TestRepair:
    def anomaly(self):
        """The order-swap case that defeats one-shot EDF commitment."""
        g = GraphBuilder().task("early", 6).task("late", 2).build()
        p = identical_platform(1)
        a = windows({"early": (0, 9), "late": (6, 2.5)})
        return g, p, a

    def test_anneal_repairs_edf_miss(self):
        g, p, a = self.anomaly()
        assert not schedule_edf(g, p, a).feasible
        s = schedule_annealed(g, p, a, iterations=200, seed=3)
        assert s.feasible
        assert validate_schedule(s, g, p, a) == []

    def test_zero_iterations_equals_edf_verdict(self):
        g, p, a = self.anomaly()
        s = schedule_annealed(g, p, a, iterations=0, seed=0)
        assert not s.feasible
        assert s.failed_task is not None
        assert s.failure_reason

    def test_never_worse_than_edf_baseline(self):
        """The annealer keeps the best-ever state, which includes the
        EDF starting point, so its tardiness never exceeds EDF's."""
        from repro.rng import make_rng
        from repro.workload import WorkloadParams, generate_workload
        from repro.sched import EdfListScheduler

        params = WorkloadParams(
            m=2, n_tasks_range=(10, 14), depth_range=(4, 6), olr=0.55
        )
        for seed in range(6):
            wl = generate_workload(params, make_rng(seed))
            a = distribute_deadlines(wl.graph, wl.platform, "PURE")
            edf = EdfListScheduler(continue_on_miss=True).schedule(
                wl.graph, wl.platform, a
            )
            edf_tardiness = sum(
                max(0.0, e.lateness) for e in edf
            )
            sa = schedule_annealed(
                wl.graph, wl.platform, a, iterations=80, seed=seed
            )
            sa_tardiness = sum(max(0.0, e.lateness) for e in sa)
            assert sa_tardiness <= edf_tardiness + 1e-9
