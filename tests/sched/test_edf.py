"""Unit tests for the EDF list scheduler (§5.4)."""

import pytest

from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.errors import SchedulingError
from repro.graph import GraphBuilder, chain_graph
from repro.sched import EdfListScheduler, schedule_edf, validate_schedule
from repro.system import (
    ContentionBus,
    Platform,
    Processor,
    ProcessorClass,
    SharedBus,
    identical_platform,
)


def windows(spec):
    return DeadlineAssignment(
        windows={
            tid: TaskWindow(a, d, a + d) for tid, (a, d) in spec.items()
        }
    )


class TestBasicPlacement:
    def test_chain_runs_back_to_back(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        s = schedule_edf(chain3, uni2, a)
        assert s.feasible
        assert s.start_time("a") == 0.0
        assert s.start_time("b") == pytest.approx(a.arrival("b"))
        assert validate_schedule(s, chain3, uni2, a) == []

    def test_parallel_tasks_use_both_processors(self, uni2):
        g = (
            GraphBuilder()
            .task("x", 10).task("y", 10)
            .build()
        )
        a = windows({"x": (0, 20), "y": (0, 20)})
        s = schedule_edf(g, uni2, a)
        assert s.feasible
        assert s.processor_of("x") != s.processor_of("y")

    def test_edf_order_on_single_processor(self):
        g = GraphBuilder().task("late", 5).task("soon", 5).build()
        a = windows({"late": (0, 50), "soon": (0, 12)})
        s = schedule_edf(g, identical_platform(1), a)
        assert s.feasible
        # 'soon' has the earlier absolute deadline -> runs first
        assert s.start_time("soon") == 0.0
        assert s.start_time("late") == 5.0

    def test_start_respects_arrival(self, uni2):
        g = GraphBuilder().task("x", 5).build()
        a = windows({"x": (30, 20)})
        s = schedule_edf(g, uni2, a)
        assert s.start_time("x") == 30.0

    def test_missing_window_raises(self, chain3, uni2):
        with pytest.raises(SchedulingError):
            schedule_edf(chain3, uni2, windows({"a": (0, 30)}))


class TestCommunication:
    def test_cross_processor_message_delays_successor(self):
        # Force the successor onto another processor by occupying p1:
        # a(10) -> b, message 5 items at 1 unit/item.
        g = (
            GraphBuilder()
            .task("a", 10).task("b", 10)
            .edge("a", "b", message=5)
            .build()
        )
        p = identical_platform(1)
        a = windows({"a": (0, 15), "b": (15, 20)})
        s = schedule_edf(g, p, a)
        # same processor: no communication cost
        assert s.start_time("b") == pytest.approx(15.0)

        # Occupy a's processor with a decoy so b must go elsewhere.
        p2 = identical_platform(2)
        g2 = (
            GraphBuilder()
            .task("a", 10).task("decoy", 40).task("b", 10)
            .edge("a", "b", message=5)
            .edge("a", "decoy")
            .build()
        )
        a2 = windows({"a": (0, 12), "decoy": (12, 41), "b": (12, 48)})
        s2 = schedule_edf(g2, p2, a2)
        assert s2.feasible
        assert s2.processor_of("decoy") == s2.processor_of("a")
        assert s2.processor_of("b") != s2.processor_of("a")
        # data ready at finish(a)=10 + 5 items = 15 > arrival 12
        assert s2.start_time("b") == pytest.approx(15.0)

    def test_contention_bus_queues_transfers(self):
        # Cross-joined producers force one bus transfer per consumer;
        # the serialized bus delays the second one.
        g = (
            GraphBuilder()
            .task("a1", 10).task("a2", 10).task("b1", 10).task("b2", 10)
            .edge("a1", "b1", message=10).edge("a2", "b1", message=10)
            .edge("a1", "b2", message=10).edge("a2", "b2", message=10)
            .build()
        )
        p = identical_platform(2)
        a = windows(
            {"a1": (0, 10), "a2": (0, 10), "b1": (10, 60), "b2": (10, 60)}
        )
        nominal = schedule_edf(g, p, a)
        assert nominal.feasible
        # nominal: each consumer waits one parallel transfer (10+10=20)
        assert max(nominal.start_time(t) for t in ("b1", "b2")) == 20.0

        contended = schedule_edf(g, p, a, comm=ContentionBus(1.0))
        assert contended.feasible
        # serialized transfers: the later consumer's data arrives at 30
        assert max(
            contended.start_time(t) for t in ("b1", "b2")
        ) == pytest.approx(30.0)


class TestEligibility:
    def test_task_placed_on_eligible_class_only(self, hetero_graph, hetero_platform):
        a = distribute_deadlines(hetero_graph, hetero_platform, "PURE")
        s = schedule_edf(hetero_graph, hetero_platform, a)
        assert s.feasible
        # task c is slow-only
        assert hetero_platform.class_of(s.processor_of("c")) == "slow"
        assert validate_schedule(s, hetero_graph, hetero_platform, a) == []

    def test_no_eligible_processor_fails_gracefully(self, hetero_platform):
        g = GraphBuilder().task("x", {"gpu": 5.0}).build()
        s = schedule_edf(g, hetero_platform, windows({"x": (0, 50)}))
        assert not s.feasible
        assert "no eligible processor" in s.failure_reason


class TestFailureModes:
    def test_fail_fast_on_miss(self):
        g = chain_graph([10, 10], e2e_deadline=15.0)
        p = identical_platform(1)
        a = windows({"t0": (0, 8), "t1": (8, 7)})  # t0 cannot fit
        s = schedule_edf(g, p, a)
        assert not s.feasible
        assert s.failed_task == "t0"
        assert len(s.entries) == 0  # stopped before committing

    def test_continue_on_miss_completes_schedule(self):
        g = chain_graph([10, 10])
        p = identical_platform(1)
        a = windows({"t0": (0, 8), "t1": (8, 7)})
        s = EdfListScheduler(continue_on_miss=True).schedule(g, p, a)
        assert not s.feasible
        assert len(s.entries) == 2
        assert s.max_lateness() > 0.0

    def test_failure_reason_mentions_deadline(self):
        g = chain_graph([10, 10])
        a = windows({"t0": (0, 5), "t1": (5, 30)})
        s = schedule_edf(g, identical_platform(1), a)
        assert "past its absolute deadline" in s.failure_reason


class TestResources:
    def test_shared_resource_serializes_parallel_tasks(self, uni2):
        g = (
            GraphBuilder()
            .task("x", 10, resources=["db"])
            .task("y", 10, resources=["db"])
            .build()
        )
        a = windows({"x": (0, 40), "y": (0, 40)})
        s = schedule_edf(g, uni2, a)
        assert s.feasible
        # despite two processors, the shared resource forbids overlap
        first, second = sorted(
            (s.entry("x"), s.entry("y")), key=lambda e: e.start
        )
        assert second.start >= first.finish - 1e-9
        assert validate_schedule(s, g, uni2, a) == []

    def test_disjoint_resources_run_in_parallel(self, uni2):
        g = (
            GraphBuilder()
            .task("x", 10, resources=["db1"])
            .task("y", 10, resources=["db2"])
            .build()
        )
        a = windows({"x": (0, 40), "y": (0, 40)})
        s = schedule_edf(g, uni2, a)
        assert s.start_time("x") == s.start_time("y") == 0.0


class TestDeterminism:
    def test_repeated_runs_identical(self, diamond, uni2):
        a = distribute_deadlines(diamond, uni2, "ADAPT-L")
        s1 = schedule_edf(diamond, uni2, a)
        s2 = schedule_edf(diamond, uni2, a)
        assert s1.to_dict() == s2.to_dict()
