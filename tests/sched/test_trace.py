"""Unit tests for schedule trace export/import."""

import pytest

from repro.core import distribute_deadlines
from repro.errors import SerializationError
from repro.sched import (
    iter_events,
    load_trace_csv,
    save_trace_csv,
    schedule_edf,
)


@pytest.fixture
def sched(chain3, uni2):
    a = distribute_deadlines(chain3, uni2, "PURE")
    return schedule_edf(chain3, uni2, a)


class TestCsvRoundTrip:
    def test_round_trip(self, sched, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(sched, path)
        again = load_trace_csv(path)
        assert len(again) == len(sched)
        for e in sched:
            e2 = again.entry(e.task_id)
            assert e2.processor == e.processor
            assert e2.start == pytest.approx(e.start)
            assert e2.finish == pytest.approx(e.finish)
        assert again.feasible == sched.feasible

    def test_rows_ordered_by_start(self, sched, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(sched, path)
        lines = path.read_text().splitlines()
        starts = [float(line.split(",")[2]) for line in lines[1:]]
        assert starts == sorted(starts)

    def test_feasibility_recomputed(self, chain3, uni2, tmp_path):
        from repro.core import DeadlineAssignment, TaskWindow
        from repro.sched import EdfListScheduler

        a = DeadlineAssignment(
            windows={
                t: TaskWindow(0.0, 1.0, 1.0) for t in chain3.task_ids()
            }
        )
        bad = EdfListScheduler(continue_on_miss=True).schedule(
            chain3, uni2, a
        )
        path = tmp_path / "bad.csv"
        save_trace_csv(bad, path)
        assert not load_trace_csv(path).feasible

    def test_malformed_trace_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,really\n1,2\n")
        with pytest.raises(SerializationError):
            load_trace_csv(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_trace_csv(tmp_path / "ghost.csv")


class TestEvents:
    def test_chronological_and_paired(self, sched):
        events = iter_events(sched)
        assert len(events) == 2 * len(sched)
        times = [e.time for e in events]
        assert times == sorted(times)
        for tid in ("a", "b", "c"):
            kinds = [e.kind for e in events if e.task_id == tid]
            assert kinds == ["start", "finish"]

    def test_finish_precedes_start_on_ties(self, sched):
        # chain: finish of a and start of b share the same instant
        events = iter_events(sched)
        a_fin = next(
            i for i, e in enumerate(events)
            if e.task_id == "a" and e.kind == "finish"
        )
        b_start = next(
            i for i, e in enumerate(events)
            if e.task_id == "b" and e.kind == "start"
        )
        assert a_fin < b_start
