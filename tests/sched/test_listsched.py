"""Unit tests for the alternative list-scheduling policies (§7.3)."""

import pytest

from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.errors import SchedulingError
from repro.graph import GraphBuilder
from repro.sched import (
    SCHEDULER_NAMES,
    FifoScheduler,
    LaxityScheduler,
    StaticLevelScheduler,
    get_scheduler,
    validate_schedule,
)
from repro.system import identical_platform


def windows(spec):
    return DeadlineAssignment(
        windows={tid: TaskWindow(a, d, a + d) for tid, (a, d) in spec.items()}
    )


class TestRegistry:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_lookup_all(self, name):
        assert get_scheduler(name).name == name

    def test_aliases(self):
        assert get_scheduler("hlfet").name == "SL-LIST"
        assert get_scheduler("edf").name == "EDF-LIST"
        assert get_scheduler("llf").name == "LLF-LIST"

    def test_unknown_rejected(self):
        with pytest.raises(SchedulingError):
            get_scheduler("RANDOM")

    def test_continue_on_miss_forwarded(self):
        s = get_scheduler("SL-LIST", continue_on_miss=True)
        assert s.continue_on_miss


class TestPriorityRules:
    def test_static_level_prefers_critical_chain(self):
        # Two independent tasks: 'long' heads a heavy chain, 'short'
        # stands alone; HLFET must dispatch 'long' first even though
        # 'short' has the earlier deadline.
        g = (
            GraphBuilder()
            .task("long", 10).task("tail", 30).task("short", 10)
            .edge("long", "tail")
            .build()
        )
        a = windows({"long": (0, 90), "tail": (0, 95), "short": (0, 15)})
        p = identical_platform(1)
        s = StaticLevelScheduler(continue_on_miss=True).schedule(g, p, a)
        assert s.start_time("long") < s.start_time("short")

    def test_fifo_follows_arrival_order(self):
        g = GraphBuilder().task("a", 5).task("b", 5).build()
        # b arrives earlier but has the later deadline
        a = windows({"a": (10, 15), "b": (0, 40)})
        p = identical_platform(1)
        s = FifoScheduler().schedule(g, p, a)
        assert s.start_time("b") < s.start_time("a")

    def test_llf_prefers_tight_windows(self):
        g = GraphBuilder().task("tight", 10).task("loose", 10).build()
        a = windows({"tight": (0, 12), "loose": (0, 50)})
        p = identical_platform(1)
        s = LaxityScheduler().schedule(g, p, a)
        assert s.start_time("tight") == 0.0

    def test_edf_differs_from_sl_on_crafted_case(self):
        g = (
            GraphBuilder()
            .task("long", 10).task("tail", 30).task("short", 10)
            .edge("long", "tail")
            .build()
        )
        a = windows({"long": (0, 90), "tail": (0, 95), "short": (0, 15)})
        p = identical_platform(1)
        edf = get_scheduler("EDF-LIST", continue_on_miss=True).schedule(g, p, a)
        sl = get_scheduler("SL-LIST", continue_on_miss=True).schedule(g, p, a)
        assert edf.start_time("short") < sl.start_time("short")


class TestStructuralValidity:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_all_policies_produce_valid_schedules(self, name, diamond, uni2):
        assignment = distribute_deadlines(diamond, uni2, "ADAPT-L")
        sched = get_scheduler(name, continue_on_miss=True).schedule(
            diamond, uni2, assignment
        )
        assert len(sched.entries) == diamond.n_tasks
        problems = validate_schedule(
            sched, diamond, uni2, assignment, check_deadlines=False
        )
        assert problems == [], (name, problems)
        assert sched.scheduler_name == name


class TestTrialIntegration:
    def test_run_trial_with_alternative_scheduler(self):
        from repro.experiments import TrialConfig, run_trial
        from repro.workload import WorkloadParams

        fast = WorkloadParams(m=3, n_tasks_range=(12, 16), depth_range=(4, 6))
        for name in SCHEDULER_NAMES:
            out = run_trial(
                TrialConfig(workload=fast, scheduler=name), seed=77
            )
            assert isinstance(out.success, bool)

    def test_abl_sched_figure_registered(self):
        from repro.experiments import get_figure_spec

        spec = get_figure_spec("abl-sched")
        assert set(spec.series) == set(SCHEDULER_NAMES)
        cfg = spec.config_for(0.8, "FIFO-LIST")
        assert cfg.scheduler == "FIFO-LIST"
