"""Unit tests for the independent schedule validator (the oracle)."""

import pytest

from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.graph import GraphBuilder
from repro.sched import (
    Schedule,
    ScheduledTask,
    assert_valid_schedule,
    schedule_edf,
    validate_schedule,
)
from repro.system import identical_platform


def put(s, tid, proc, start, finish, arrival=0.0, deadline=1000.0):
    s.entries[tid] = ScheduledTask(
        task_id=tid,
        processor=proc,
        start=start,
        finish=finish,
        arrival=arrival,
        absolute_deadline=deadline,
    )


@pytest.fixture
def g():
    return (
        GraphBuilder()
        .task("a", 10).task("b", 10)
        .edge("a", "b", message=4)
        .e2e("a", "b", 100)
        .build()
    )


@pytest.fixture
def p():
    return identical_platform(2)


class TestCleanSchedule:
    def test_edf_output_validates(self, g, p):
        a = distribute_deadlines(g, p, "PURE")
        s = schedule_edf(g, p, a)
        assert validate_schedule(s, g, p, a) == []
        assert_valid_schedule(s, g, p, a)


class TestViolationDetection:
    def test_missing_task_in_feasible_schedule(self, g, p):
        s = Schedule(feasible=True)
        put(s, "a", "p1", 0, 10)
        assert any("missing task" in v for v in validate_schedule(s, g, p))

    def test_unknown_task(self, g, p):
        s = Schedule(feasible=False)
        put(s, "ghost", "p1", 0, 10)
        assert any("not in the graph" in v for v in validate_schedule(s, g, p))

    def test_unknown_processor(self, g, p):
        s = Schedule(feasible=False)
        put(s, "a", "p99", 0, 10)
        assert any(
            "unknown processor" in v for v in validate_schedule(s, g, p)
        )

    def test_ineligible_placement(self, p):
        g2 = GraphBuilder().task("x", {"gpu": 5.0}).build()
        s = Schedule(feasible=False)
        put(s, "x", "p1", 0, 5)
        assert any("ineligible" in v for v in validate_schedule(s, g2, p))

    def test_wrong_duration(self, g, p):
        s = Schedule(feasible=False)
        put(s, "a", "p1", 0, 7)  # WCET is 10
        assert any("duration" in v for v in validate_schedule(s, g, p))

    def test_processor_overlap(self, g, p):
        s = Schedule(feasible=False)
        put(s, "a", "p1", 0, 10)
        put(s, "b", "p1", 5, 15)
        assert any("overlaps" in v for v in validate_schedule(s, g, p))

    def test_precedence_violation_includes_comm_delay(self, g, p):
        s = Schedule(feasible=False)
        put(s, "a", "p1", 0, 10)
        # data-ready on p2 is 10 + 4 items = 14; starting at 12 is wrong
        put(s, "b", "p2", 12, 22)
        assert any("data-ready" in v for v in validate_schedule(s, g, p))

    def test_precedence_ok_on_same_processor(self, g, p):
        s = Schedule(feasible=False)
        put(s, "a", "p1", 0, 10)
        put(s, "b", "p1", 10, 20)
        assert validate_schedule(s, g, p) == []

    def test_start_before_arrival(self, g, p):
        a = DeadlineAssignment(
            windows={
                "a": TaskWindow(5.0, 20.0, 25.0),
                "b": TaskWindow(25.0, 20.0, 45.0),
            }
        )
        s = Schedule(feasible=False)
        put(s, "a", "p1", 0, 10)
        assert any(
            "before its arrival" in v for v in validate_schedule(s, g, p, a)
        )

    def test_deadline_miss_only_checked_when_feasible(self, g, p):
        a = DeadlineAssignment(
            windows={
                "a": TaskWindow(0.0, 5.0, 5.0),
                "b": TaskWindow(5.0, 50.0, 55.0),
            }
        )
        s = Schedule(feasible=False)
        put(s, "a", "p1", 0, 10)
        put(s, "b", "p1", 10, 20)
        # infeasible schedule: structural checks only
        assert validate_schedule(s, g, p, a) == []
        # but an explicit request re-enables the deadline check
        assert any(
            "past its absolute deadline" in v
            for v in validate_schedule(s, g, p, a, check_deadlines=True)
        )

    def test_resource_overlap_detected(self, p):
        g2 = (
            GraphBuilder()
            .task("x", 10, resources=["db"])
            .task("y", 10, resources=["db"])
            .build()
        )
        s = Schedule(feasible=False)
        put(s, "x", "p1", 0, 10)
        put(s, "y", "p2", 5, 15)
        assert any("concurrently" in v for v in validate_schedule(s, g2, p))

    def test_assert_valid_raises(self, g, p):
        s = Schedule(feasible=False)
        put(s, "a", "p1", 0, 7)
        with pytest.raises(AssertionError):
            assert_valid_schedule(s, g, p)
