"""Unit tests for the branch-and-bound scheduler (§1 [3,4], §7.2)."""

import pytest

from repro.core import DeadlineAssignment, TaskWindow, distribute_deadlines
from repro.errors import SchedulingError
from repro.graph import GraphBuilder, chain_graph
from repro.sched import (
    BnbStatus,
    BranchAndBoundScheduler,
    schedule_branch_and_bound,
    schedule_edf,
    validate_schedule,
)
from repro.system import identical_platform


def windows(spec):
    return DeadlineAssignment(
        windows={tid: TaskWindow(a, d, a + d) for tid, (a, d) in spec.items()}
    )


class TestBasics:
    def test_finds_edf_solution_without_backtracking(self, chain3, uni2):
        a = distribute_deadlines(chain3, uni2, "PURE")
        result = schedule_branch_and_bound(chain3, uni2, a)
        assert result.status is BnbStatus.FEASIBLE
        assert result.feasible and result.proved
        # EDF already solves this; the first dive must succeed:
        # exactly one node per task.
        assert result.nodes_explored == chain3.n_tasks
        assert validate_schedule(result.schedule, chain3, uni2, a) == []

    def test_missing_window_raises(self, chain3, uni2):
        with pytest.raises(SchedulingError):
            schedule_branch_and_bound(chain3, uni2, windows({"a": (0, 10)}))

    def test_task_with_no_eligible_processor_is_infeasible(self, uni2):
        g = GraphBuilder().task("x", {"gpu": 5.0}).build()
        result = schedule_branch_and_bound(g, uni2, windows({"x": (0, 50)}))
        assert result.status is BnbStatus.INFEASIBLE

    def test_bad_parameters_rejected(self):
        with pytest.raises(SchedulingError):
            BranchAndBoundScheduler(node_budget=0)
        with pytest.raises(SchedulingError):
            BranchAndBoundScheduler(branch_width=0)


class TestBeyondEdf:
    def test_recovers_from_edf_commitment_anomaly(self):
        """A case where list-EDF fails but a feasible order exists.

        One processor.  ``early`` spans [0, 9] with c = 6; ``late``
        spans [6, 8.5] with c = 2.  EDF commits ``late`` first (earlier
        absolute deadline), idling the processor over [0, 6) and
        pushing ``early`` to finish at 14 > 9.  Running ``early`` first
        (0–6, then 6–8) meets both deadlines; branch-and-bound finds it
        by backtracking out of the EDF order.
        """
        g = GraphBuilder().task("early", 6).task("late", 2).build()
        p = identical_platform(1)
        a = windows({"early": (0, 9), "late": (6, 2.5)})
        edf = schedule_edf(g, p, a)
        assert not edf.feasible
        result = schedule_branch_and_bound(g, p, a)
        assert result.status is BnbStatus.FEASIBLE
        s = result.schedule
        assert s.start_time("early") == 0.0
        assert s.start_time("late") == 6.0
        assert validate_schedule(s, g, p, a) == []

    def test_proves_infeasibility(self):
        g = chain_graph([10, 10], e2e_deadline=15.0)
        p = identical_platform(2)
        a = windows({"t0": (0, 7), "t1": (7, 8)})
        result = schedule_branch_and_bound(g, p, a)
        assert result.status is BnbStatus.INFEASIBLE
        assert result.proved

    def test_budget_exhaustion_reports_unknown(self):
        # Overconstrained wide graph with a one-node budget.
        g = GraphBuilder().task("x", 10).task("y", 10).task("z", 10).build()
        p = identical_platform(1)
        a = windows({t: (0, 25) for t in ("x", "y", "z")})
        result = BranchAndBoundScheduler(node_budget=1).solve(g, p, a)
        assert result.status is BnbStatus.UNKNOWN
        assert not result.proved

    def test_beam_width_cannot_prove_infeasibility(self):
        g = chain_graph([10, 10], e2e_deadline=15.0)
        p = identical_platform(1)
        a = windows({"t0": (0, 7), "t1": (7, 8)})
        result = BranchAndBoundScheduler(branch_width=1).solve(g, p, a)
        assert result.status is BnbStatus.UNKNOWN


class TestAgainstOracle:
    def test_agrees_with_edf_on_random_workloads(self):
        """Whenever EDF succeeds, B&B must succeed (it subsumes EDF)."""
        from repro.rng import make_rng
        from repro.workload import WorkloadParams, generate_workload

        params = WorkloadParams(
            m=2, n_tasks_range=(10, 14), depth_range=(4, 6)
        )
        edf_feasible = bnb_feasible = 0
        for seed in range(12):
            wl = generate_workload(params, make_rng(seed))
            a = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")
            edf = schedule_edf(wl.graph, wl.platform, a)
            bnb = schedule_branch_and_bound(
                wl.graph, wl.platform, a, node_budget=50_000
            )
            if edf.feasible:
                edf_feasible += 1
                assert bnb.status is BnbStatus.FEASIBLE
            if bnb.feasible:
                bnb_feasible += 1
                problems = validate_schedule(
                    bnb.schedule, wl.graph, wl.platform, a
                )
                assert problems == []
        assert bnb_feasible >= edf_feasible

    def test_respects_resources(self, uni2):
        g = (
            GraphBuilder()
            .task("x", 10, resources=["db"])
            .task("y", 10, resources=["db"])
            .build()
        )
        a = windows({"x": (0, 40), "y": (0, 40)})
        result = schedule_branch_and_bound(g, uni2, a)
        assert result.feasible
        assert validate_schedule(result.schedule, g, uni2, a) == []
