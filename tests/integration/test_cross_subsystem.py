"""Integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro.core import distribute_deadlines
from repro.rng import make_rng
from repro.sched import (
    build_dispatch_tables,
    iter_events,
    schedule_edf,
    validate_schedule,
)
from repro.system import Platform, Processor, ProcessorClass, identical_platform
from repro.workload import WorkloadParams, engine_control_graph, generate_workload

FAST = WorkloadParams(m=2, n_tasks_range=(12, 16), depth_range=(4, 6))


class TestQuantizedPipeline:
    def test_quantized_windows_schedule_and_validate(self):
        wl = generate_workload(FAST, make_rng(0))
        a = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L").quantized()
        s = schedule_edf(wl.graph, wl.platform, a)
        problems = validate_schedule(
            s, wl.graph, wl.platform, a, check_deadlines=False
        )
        assert problems == []
        # integer windows (generator uses integer phasings and times)
        for tid in wl.graph.task_ids():
            w = a.window(tid)
            assert w.arrival == int(w.arrival)
            assert w.absolute_deadline == int(w.absolute_deadline)

    def test_quantization_rarely_flips_feasibility(self):
        # Floors shrink windows by < 1 unit; with integer WCETs the
        # schedule usually lands on the same placements.
        flips = 0
        for seed in range(10):
            wl = generate_workload(FAST, make_rng(seed))
            a = distribute_deadlines(wl.graph, wl.platform, "PURE")
            s1 = schedule_edf(wl.graph, wl.platform, a)
            s2 = schedule_edf(wl.graph, wl.platform, a.quantized())
            flips += s1.feasible != s2.feasible
        assert flips <= 3


class TestAdmissionToDispatch:
    def test_admitted_work_becomes_a_dispatch_table(self):
        from repro.online import AdmissionController

        platform = identical_platform(2)
        ctrl = AdmissionController(platform, metric="PURE")
        from repro.graph import chain_graph

        ctrl.submit("a", chain_graph([10, 15]), arrival=0.0,
                    relative_deadline=60.0)
        ctrl.submit("b", chain_graph([12, 8]), arrival=10.0,
                    relative_deadline=70.0)
        combined = ctrl.combined_schedule()
        tables = build_dispatch_tables(combined, platform, cycle_length=100.0)
        names = {e.task_id for t in tables.values() for e in t.entries}
        assert names == set(combined.entries)
        # no instant hosts two tasks on one processor
        for t in tables.values():
            for x in np.linspace(0.0, 99.9, 200):
                t.running_at(float(x))  # must never raise

    def test_events_match_dispatch_entries(self):
        wl = generate_workload(FAST, make_rng(3))
        a = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")
        s = schedule_edf(wl.graph, wl.platform, a)
        if not s.feasible:
            pytest.skip("seed produced an infeasible set")
        tables = build_dispatch_tables(s, wl.platform)
        starts = {
            (e.task_id, e.start)
            for t in tables.values()
            for e in t.entries
        }
        event_starts = {
            (ev.task_id, ev.time)
            for ev in iter_events(s)
            if ev.kind == "start"
        }
        assert starts == event_starts


class TestScenarioToSvg:
    def test_engine_control_renders_everywhere(self, tmp_path):
        from repro.periodic import expand_multirate_graph
        from repro.viz import gantt_svg, graph_svg

        g = engine_control_graph(rng=np.random.default_rng(1))
        unrolled = expand_multirate_graph(g)
        platform = Platform(
            [Processor("ecu1", "ecu"), Processor("dsp1", "dsp")],
            [ProcessorClass("ecu"), ProcessorClass("dsp")],
        )
        a = distribute_deadlines(unrolled, platform, "ADAPT-L")
        s = schedule_edf(unrolled, platform, a)
        assert s.feasible
        import xml.etree.ElementTree as ET

        ET.fromstring(graph_svg(unrolled))
        ET.fromstring(gantt_svg(s, platform, a))


class TestStrictLocalityToTrace:
    def test_clustered_assignment_trace_round_trip(self, tmp_path):
        from repro.assign import (
            FixedAssignmentEdfScheduler,
            cluster_assignment,
            exact_estimates,
        )
        from repro.sched import load_trace_csv, save_trace_csv

        wl = generate_workload(FAST.with_overrides(olr=1.2), make_rng(5))
        fixed = cluster_assignment(wl.graph, wl.platform)
        est = exact_estimates(wl.graph, wl.platform, fixed)
        a = distribute_deadlines(
            wl.graph, wl.platform, "NORM", estimates=est
        )
        s = FixedAssignmentEdfScheduler(fixed, continue_on_miss=True).schedule(
            wl.graph, wl.platform, a
        )
        path = tmp_path / "strict.csv"
        save_trace_csv(s, path)
        again = load_trace_csv(path)
        for entry in again:
            assert entry.processor == fixed.processor_of(entry.task_id)
