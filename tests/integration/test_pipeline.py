"""Integration tests: generator → slicing → EDF → oracle validation."""

import pytest

from repro.core import METRIC_NAMES, distribute_deadlines, estimate_map
from repro.rng import make_rng
from repro.sched import schedule_edf, validate_schedule
from repro.workload import WorkloadParams, generate_workload

FAST = WorkloadParams(m=3, n_tasks_range=(20, 30), depth_range=(5, 7))


class TestFullPipeline:
    @pytest.mark.parametrize("metric", METRIC_NAMES)
    def test_random_workloads_validate(self, metric):
        for seed in range(8):
            wl = generate_workload(FAST, make_rng(seed))
            a = distribute_deadlines(wl.graph, wl.platform, metric)
            s = schedule_edf(wl.graph, wl.platform, a)
            problems = validate_schedule(s, wl.graph, wl.platform, a)
            assert problems == [], (metric, seed, problems)

    def test_estimates_shared_across_metrics(self):
        wl = generate_workload(FAST, make_rng(3))
        est = estimate_map(wl.graph, "WCET-AVG", wl.platform)
        a1 = distribute_deadlines(
            wl.graph, wl.platform, "PURE", estimates=est
        )
        a2 = distribute_deadlines(wl.graph, wl.platform, "PURE")
        assert a1.to_dict() == a2.to_dict()

    @pytest.mark.parametrize("mode", ["workload", "pair-surplus"])
    def test_both_deadline_modes_run(self, mode):
        params = FAST.with_overrides(deadline_mode=mode)
        wl = generate_workload(params, make_rng(5))
        a = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")
        s = schedule_edf(wl.graph, wl.platform, a)
        assert validate_schedule(s, wl.graph, wl.platform, a) == []

    def test_heterogeneous_wcets_respected(self):
        # The validator cross-checks entry durations against per-class
        # WCETs, so one pass over several heterogeneous workloads
        # exercises the whole WCET-vector plumbing.
        params = FAST.with_overrides(m=4, etd=0.5)
        for seed in (11, 12, 13):
            wl = generate_workload(params, make_rng(seed))
            assert wl.platform.m_e >= 1
            a = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")
            s = schedule_edf(wl.graph, wl.platform, a)
            assert validate_schedule(s, wl.graph, wl.platform, a) == []


class TestSerializationAcrossPipeline:
    def test_assignment_survives_round_trip_and_reschedules(self):
        from repro.core import DeadlineAssignment

        wl = generate_workload(FAST, make_rng(9))
        a = distribute_deadlines(wl.graph, wl.platform, "NORM")
        a2 = DeadlineAssignment.from_dict(a.to_dict())
        s1 = schedule_edf(wl.graph, wl.platform, a)
        s2 = schedule_edf(wl.graph, wl.platform, a2)
        assert s1.to_dict() == s2.to_dict()

    def test_graph_round_trip_preserves_distribution(self):
        from repro.graph import graph_from_dict, graph_to_dict

        wl = generate_workload(FAST, make_rng(10))
        g2 = graph_from_dict(graph_to_dict(wl.graph))
        a1 = distribute_deadlines(wl.graph, wl.platform, "ADAPT-G")
        a2 = distribute_deadlines(g2, wl.platform, "ADAPT-G")
        assert a1.to_dict() == a2.to_dict()
