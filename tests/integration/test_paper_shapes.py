"""Qualitative reproduction checks against the paper's claims (§6).

These use reduced trial counts (the statistics stay decisive because
the claimed effects are large); the full-scale reproduction lives in
the benchmark harness and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import TrialConfig, run_cell
from repro.experiments.runner import _cell_seeds
from repro.workload import WorkloadParams

TRIALS = 48


def ratio(metric="ADAPT-L", estimator="WCET-AVG", cell=0, **workload):
    config = TrialConfig(
        workload=WorkloadParams(**workload), metric=metric, estimator=estimator
    )
    seeds = _cell_seeds(20260706, cell, TRIALS)
    return run_cell(config, seeds).ratio


class TestFigure2Shapes:
    """Success ratio vs system size."""

    def test_success_rises_with_m(self):
        small = ratio(metric="PURE", m=2)
        large = ratio(metric="PURE", m=6, cell=1)
        assert large > small + 0.3

    def test_adapt_l_dominates_at_three_processors(self):
        rl = ratio(metric="ADAPT-L", m=3)
        rp = ratio(metric="PURE", m=3)
        assert rl > rp

    def test_paper_ordering_at_default_operating_point(self):
        rs = {m: ratio(metric=m, m=3) for m in ("PURE", "NORM", "ADAPT-G", "ADAPT-L")}
        assert rs["ADAPT-L"] >= rs["ADAPT-G"] >= rs["NORM"] >= rs["PURE"]

    def test_adapt_l_beats_adapt_g_on_two_processors(self):
        # Paper: "four times higher" at m=2; assert a clear gap.
        rl = ratio(metric="ADAPT-L", m=2)
        rg = ratio(metric="ADAPT-G", m=2)
        assert rl > rg + 0.1


class TestFigure3Shapes:
    """Success ratio vs OLR at m=3."""

    def test_success_rises_with_olr(self):
        tight = ratio(metric="NORM", m=3, olr=0.5)
        loose = ratio(metric="NORM", m=3, olr=1.0, cell=1)
        assert loose > tight + 0.2

    def test_adapt_l_leads_at_tight_deadlines(self):
        rl = ratio(metric="ADAPT-L", m=3, olr=0.6)
        rp = ratio(metric="PURE", m=3, olr=0.6)
        assert rl > rp


class TestFigure4Shapes:
    """Success ratio vs ETD at m=3, OLR=0.8."""

    def test_etd_zero_convergence(self):
        """PURE, NORM and ADAPT-G coincide exactly at ETD = 0 (paper §6.3).

        With identical execution times every metric distributes D/n per
        path task, so the three produce *identical* assignments — we
        assert equal success counts, the strongest form of the claim.
        """
        rs = {
            m: ratio(metric=m, m=3, etd=0.0)
            for m in ("PURE", "NORM", "ADAPT-G")
        }
        assert len(set(rs.values())) == 1

    def test_adapt_l_ahead_at_etd_zero(self):
        base = ratio(metric="PURE", m=3, etd=0.0)
        rl = ratio(metric="ADAPT-L", m=3, etd=0.0)
        assert rl > base


class TestWcetStrategyShapes:
    """Figures 5–6: WCET estimation strategies under ADAPT-L."""

    def test_strategies_comparable_at_default_etd(self):
        # Paper: MAX ~ +5% over AVG, MIN ~ -5%; with reduced trials we
        # assert the weaker, robust form: all three land in one band.
        rs = {
            e: ratio(estimator=e, m=3, olr=0.7)
            for e in ("WCET-AVG", "WCET-MAX", "WCET-MIN")
        }
        assert max(rs.values()) - min(rs.values()) < 0.35

    def test_max_not_best_at_extreme_etd(self):
        # Paper §6.4: WCET-MAX degrades past ETD = 75%.
        rmax = ratio(estimator="WCET-MAX", m=3, etd=1.0, olr=0.6)
        ravg = ratio(estimator="WCET-AVG", m=3, etd=1.0, olr=0.6)
        assert rmax <= ravg + 0.15


class TestAdaptivityParameters:
    """§7.1: k = 0 reduces the adaptive metrics to PURE."""

    def test_k_zero_equals_pure(self):
        from repro.core import AdaptiveParams

        config_pure = TrialConfig(
            workload=WorkloadParams(m=3), metric="PURE"
        )
        config_k0 = TrialConfig(
            workload=WorkloadParams(m=3),
            metric="ADAPT-L",
            adaptive=AdaptiveParams(k_l=0.0),
        )
        seeds = _cell_seeds(77, 0, 24)
        assert (
            run_cell(config_pure, seeds).estimate
            == run_cell(config_k0, seeds).estimate
        )
