"""Bit-for-bit reproducibility across the whole stack."""

import json

from repro.experiments import (
    TrialConfig,
    get_figure_spec,
    run_experiment,
    save_json,
)
from repro.experiments.spec import ExperimentSpec
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=2, n_tasks_range=(10, 14), depth_range=(4, 6))


def small_fig2():
    spec = get_figure_spec("fig2")

    def config(x, metric):
        base = spec.config_for(x, metric)
        return TrialConfig(
            workload=FAST.with_overrides(m=int(x)),
            metric=metric,
            adaptive=base.adaptive,
        )

    return ExperimentSpec(
        name="fig2-small", title=spec.title, x_label=spec.x_label,
        x_values=(2, 3), series=spec.series, config_for=config,
    )


class TestReproducibility:
    def test_identical_json_across_runs(self, tmp_path):
        docs = []
        for run in range(2):
            result = run_experiment(small_fig2(), trials=6, seed=7, jobs=1)
            path = tmp_path / f"run{run}.json"
            save_json(result, path)
            doc = json.loads(path.read_text())
            doc.pop("elapsed_seconds")
            docs.append(doc)
        assert docs[0] == docs[1]

    def test_parallel_equals_serial_json(self, tmp_path):
        serial = run_experiment(small_fig2(), trials=6, seed=7, jobs=1)
        parallel = run_experiment(small_fig2(), trials=6, seed=7, jobs=3)
        d1, d2 = serial.to_dict(), parallel.to_dict()
        d1.pop("elapsed_seconds")
        d2.pop("elapsed_seconds")
        assert d1 == d2

    def test_full_pipeline_artifacts_stable(self, tmp_path):
        """Graph JSON, assignment dict, schedule dict and trace CSV are
        byte-stable for a fixed seed."""
        from repro.core import distribute_deadlines
        from repro.graph import graph_to_dict
        from repro.rng import make_rng
        from repro.sched import save_trace_csv, schedule_edf
        from repro.workload import generate_workload

        payloads = []
        for _ in range(2):
            wl = generate_workload(FAST, make_rng(99))
            a = distribute_deadlines(wl.graph, wl.platform, "ADAPT-L")
            s = schedule_edf(wl.graph, wl.platform, a)
            trace = tmp_path / "t.csv"
            save_trace_csv(s, trace)
            payloads.append(
                (
                    json.dumps(graph_to_dict(wl.graph), sort_keys=True),
                    json.dumps(a.to_dict(), sort_keys=True),
                    json.dumps(s.to_dict(), sort_keys=True),
                    trace.read_text(),
                )
            )
        assert payloads[0] == payloads[1]
