"""Edge-case tests for SVG rendering and chart helpers."""

import xml.etree.ElementTree as ET

from repro.core import DeadlineAssignment, TaskWindow
from repro.graph import GraphBuilder, chain_graph
from repro.sched import Schedule, schedule_edf
from repro.system import identical_platform
from repro.viz import gantt_svg, graph_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


class TestGanttEdgeCases:
    def test_empty_schedule_renders(self):
        svg = gantt_svg(Schedule(), identical_platform(2))
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_zero_length_window_survives(self, uni2):
        g = GraphBuilder().task("x", 5).build()
        a = DeadlineAssignment(
            windows={"x": TaskWindow(10.0, 0.0, 10.0)}
        )
        s = Schedule()
        from repro.sched import ScheduledTask

        s.entries["x"] = ScheduledTask("x", "p1", 10.0, 15.0, 10.0, 10.0)
        s.feasible = False
        ET.fromstring(gantt_svg(s, uni2, a))

    def test_deadline_extends_canvas(self, uni2):
        # the window underlay must fit even past the makespan
        g = chain_graph([5], e2e_deadline=100.0)
        a = DeadlineAssignment(windows={"t0": TaskWindow(0.0, 100.0, 100.0)})
        s = schedule_edf(g, uni2, a)
        svg = gantt_svg(s, uni2, a)
        root = ET.fromstring(svg)
        underlay = [
            r for r in root.findall(f".//{SVG_NS}rect")
            if r.get("fill") == "#d0d7de"
        ]
        assert len(underlay) == 1

    def test_color_stability(self):
        from repro.viz.svg import _color

        assert _color("task-a") == _color("task-a")


class TestGraphSvgEdgeCases:
    def test_single_node(self):
        g = GraphBuilder().task("only", 5).build()
        root = ET.fromstring(graph_svg(g))
        assert len(root.findall(f".//{SVG_NS}rect")) == 1
        assert root.findall(f".//{SVG_NS}line") == []

    def test_wide_level_centred(self):
        g = (
            GraphBuilder()
            .task("s", 1)
            .task("a", 1).task("b", 1).task("c", 1).task("d", 1)
            .edge("s", "a").edge("s", "b").edge("s", "c").edge("s", "d")
            .build()
        )
        root = ET.fromstring(graph_svg(g))
        xs = sorted(
            float(r.get("x")) for r in root.findall(f".//{SVG_NS}rect")
        )
        # four children spread symmetrically around the lone parent
        assert len(set(xs)) >= 4
