"""Vectorized-tier bit-identity against the reference oracle.

The third tier's contract, mirrored from ``test_bit_identity``: for
every configuration inside the kernel envelope,
``run_trial(use_vec=True)`` equals ``run_trial(use_kernel=False)``
field for field on the default tie-break — across the same randomized
workload sweep, through the seed-batch driver, and through every error
and fallback branch (``_average_parallelism`` failures, NumPy absent).
"""

import math

import pytest

import repro.kernel.vec as vec
from repro.core.metrics import METRIC_NAMES, get_metric
from repro.errors import GraphError
from repro.experiments import TrialConfig
from repro.experiments.context import TrialContext
from repro.experiments.runner import run_paired_cells, run_trial
from repro.graph import TaskGraph
from repro.kernel.compiled import compile_workload
from repro.kernel.metrics import kernel_weights
from repro.system import identical_platform
from repro.workload import WorkloadParams

from .test_bit_identity import (
    ESTIMATORS,
    OUTCOME_FIELDS,
    SHAPES,
    _chunks,
    _same,
)


@pytest.mark.parametrize("indices", _chunks(), ids=lambda r: f"ws{r.start}")
def test_vec_trial_outcomes_bit_identical(indices):
    """The 208-workload sweep, vectorized tier vs reference oracle."""
    for ws in indices:
        shape = SHAPES[ws % len(SHAPES)]
        params = WorkloadParams(m=2 + ws % 5, **shape)
        context = TrialContext.from_seed(params, 7000 + ws)
        estimator = ESTIMATORS[ws % len(ESTIMATORS)]
        for metric in METRIC_NAMES:
            for lateness in (False, True):
                config = TrialConfig(
                    workload=params,
                    metric=metric,
                    estimator=estimator,
                    measure_lateness=lateness,
                )
                ref = run_trial(config, 7000 + ws, context, use_kernel=False)
                fast = run_trial(
                    config, 7000 + ws, context, use_kernel=True, use_vec=True
                )
                for name in OUTCOME_FIELDS:
                    assert _same(getattr(ref, name), getattr(fast, name)), (
                        f"workload {ws} (m={params.m}, shape={shape}), "
                        f"{metric}/{estimator}, lateness={lateness}: "
                        f"{name} {getattr(ref, name)!r} != "
                        f"{getattr(fast, name)!r}"
                    )


def _cell_fields(result):
    return (
        result.estimate.successes,
        result.estimate.trials,
        result.degenerate,
        result.mean_min_laxity,
        result.mean_max_lateness,
        result.lateness_trials,
    )


def test_batch_driver_equals_sequential_loop():
    """``run_paired_cells(use_vec=True)`` — the seed-batch driver with a
    mixed-series chunk (fail-fast, lateness, contention bus, and a
    non-batchable strict-locality series) — aggregates bit-identically
    to the sequential per-trial loop."""
    params = WorkloadParams(m=3, n_tasks_range=(8, 16), depth_range=(3, 6))
    cells = [
        (0, TrialConfig(workload=params, metric="PURE")),
        (1, TrialConfig(workload=params, metric="ADAPT-L",
                        measure_lateness=True)),
        (2, TrialConfig(workload=params, metric="ADAPT-G",
                        contention_bus=True)),
        (3, TrialConfig(workload=params, metric="NORM", estimator="MAX")),
        (4, TrialConfig(workload=params, metric="ADAPT-L",
                        locality="strict")),
    ]
    seeds = list(range(4100, 4124))
    batch = run_paired_cells(cells, seeds, use_vec=True)
    seq = run_paired_cells(cells, seeds, use_vec=False)
    assert [si for si, _ in batch] == [si for si, _ in seq]
    for (_, b), (_, s) in zip(batch, seq):
        for bv, sv in zip(_cell_fields(b), _cell_fields(s)):
            assert _same(bv, sv), (b, s)


@pytest.mark.skipif(
    not vec.vec_available(),
    reason="exercises the vec batch API directly, which requires NumPy "
    "(dispatch-level fallback is covered by TestNumpyAbsentFallback)",
)
class TestAverageParallelismErrorBranches:
    """The vec weight batch flags error lanes (no cache write) and the
    scalar retry raises the reference exceptions verbatim."""

    def test_longest_path_nonpositive(self, chain3):
        cw = compile_workload(chain3, identical_platform(2))
        metric = get_metric("ADAPT-G", None)
        zeros = [0.0] * cw.n
        flagged = vec.vec_weights_batch([cw], metric, [zeros], "WCET-AVG")
        assert flagged == [None]
        assert not cw.weights_cache()  # error lanes never cache
        with pytest.raises(GraphError, match="longest path"):
            vec.vec_weights(cw, metric, zeros, "WCET-AVG")
        with pytest.raises(GraphError, match="longest path"):
            kernel_weights(cw, metric, zeros, "WCET-AVG")

    def test_empty_graph(self):
        cw = compile_workload(TaskGraph(), identical_platform(2))
        metric = get_metric("ADAPT-G", None)
        assert vec.vec_weights_batch([cw], metric, [[]], "WCET-AVG") == [None]
        with pytest.raises(GraphError, match="empty graph"):
            vec.vec_weights(cw, metric, [], "WCET-AVG")


class TestNumpyAbsentFallback:
    def _config(self):
        return TrialConfig(
            workload=WorkloadParams(m=3, n_tasks_range=(8, 14)),
            metric="ADAPT-G",
        )

    def test_monkeypatched_import_failure_falls_back(self, monkeypatch):
        """A failed ``import numpy`` leaves every entry point reporting
        unavailable and the dispatcher bit-identical via the kernel."""
        monkeypatch.setattr(vec, "_np", None)
        monkeypatch.setattr(vec, "_np_checked", True)
        assert not vec.vec_available()
        config = self._config()
        ref = run_trial(config, 1234, use_kernel=False)
        out = run_trial(config, 1234, use_kernel=True, use_vec=True)
        for name in OUTCOME_FIELDS:
            assert _same(getattr(ref, name), getattr(out, name)), name

    def test_no_numpy_env_knob(self, monkeypatch):
        """``REPRO_VEC_NO_NUMPY=1`` (the CI fallback leg) forces the
        absent answer without touching the real import state."""
        monkeypatch.setenv("REPRO_VEC_NO_NUMPY", "1")
        assert not vec.vec_available()
        config = self._config()
        ref = run_trial(config, 99, use_kernel=False)
        out = run_trial(config, 99, use_kernel=True, use_vec=True)
        for name in OUTCOME_FIELDS:
            assert _same(getattr(ref, name), getattr(out, name)), name
        monkeypatch.delenv("REPRO_VEC_NO_NUMPY")
        assert vec.vec_available()

    def test_batch_driver_falls_back_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_NO_NUMPY", "1")
        params = WorkloadParams(m=3, n_tasks_range=(8, 14))
        cells = [(0, TrialConfig(workload=params, metric="PURE"))]
        seeds = list(range(300, 308))
        absent = run_paired_cells(cells, seeds, use_vec=True)
        monkeypatch.delenv("REPRO_VEC_NO_NUMPY")
        present = run_paired_cells(cells, seeds, use_vec=True)
        assert _cell_fields(absent[0][1]) == _cell_fields(present[0][1])


def test_fastmath_smoke(monkeypatch):
    """``REPRO_VEC_FASTMATH=1`` may relax tie-break order but must stay
    deterministic and structurally sound."""
    monkeypatch.setenv("REPRO_VEC_FASTMATH", "1")
    params = WorkloadParams(m=3, n_tasks_range=(10, 18))
    config = TrialConfig(workload=params, metric="ADAPT-L")
    for seed in range(5600, 5608):
        ref = run_trial(config, seed, use_kernel=False)
        one = run_trial(config, seed, use_kernel=True, use_vec=True)
        two = run_trial(config, seed, use_kernel=True, use_vec=True)
        assert one.n_tasks == ref.n_tasks
        assert isinstance(one.success, bool)
        for name in OUTCOME_FIELDS:
            assert _same(getattr(one, name), getattr(two, name)), name
        assert math.isnan(one.max_lateness) or isinstance(
            one.max_lateness, float
        )
