"""The kernel's switches: REPRO_KERNEL, engine="paired-ref", inline units.

Covers the operational contract around the fast path: the environment
switch is read per call and round-trips through the CLI with
byte-identical reports, the ``paired-ref`` engine pins a run to the
reference pipeline, and a single dispatched work unit never pays for a
process pool (the warm-cache tail regression).
"""

import json
import re

import pytest

import repro.experiments.runner as runner_mod
from repro.cli import main
from repro.experiments import ExperimentSpec, TrialConfig, run_experiment
from repro.experiments.runner import _resolve_jobs
from repro.kernel.trial import kernel_enabled
from repro.workload import WorkloadParams


def _tiny_spec(series=("PURE", "ADAPT-L")) -> ExperimentSpec:
    base = WorkloadParams(n_tasks_range=(8, 14), depth_range=(3, 5))

    def config_for(x, metric: str) -> TrialConfig:
        return TrialConfig(workload=base.with_overrides(m=int(x)), metric=metric)

    return ExperimentSpec(
        name="kernel-switch-test",
        title="t",
        x_label="m",
        x_values=(3,),
        series=series,
        config_for=config_for,
    )


def _doc_of(result) -> str:
    doc = result.to_dict()
    doc.pop("elapsed_seconds")
    return json.dumps(doc, sort_keys=True)


class TestEnvSwitch:
    def test_kernel_enabled_reads_env_per_call(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernel_enabled()
        monkeypatch.setenv("REPRO_KERNEL", "0")
        assert not kernel_enabled()
        monkeypatch.setenv("REPRO_KERNEL", "1")
        assert kernel_enabled()

    def test_cli_roundtrip_is_byte_identical(
        self, tmp_path, capsys, monkeypatch
    ):
        """REPRO_KERNEL=0 and =1 CLI runs print and write the same report."""
        reports = {}
        docs = {}
        for flag in ("0", "1"):
            monkeypatch.setenv("REPRO_KERNEL", flag)
            out_dir = tmp_path / f"kernel-{flag}"
            code = main(
                [
                    "fig2",
                    "--trials", "2",
                    "--seed", "11",
                    "--jobs", "1",
                    "--out", str(out_dir),
                ]
            )
            assert code == 0
            reports[flag] = re.sub(
                r"elapsed=\S+", "elapsed=*", capsys.readouterr().out
            )
            doc = json.loads((out_dir / "fig2.json").read_text())
            doc.pop("elapsed_seconds", None)
            docs[flag] = json.dumps(doc, sort_keys=True)
        assert reports["0"] == reports["1"]
        assert docs["0"] == docs["1"]


class TestPairedRefEngine:
    def test_paired_ref_equals_paired(self):
        spec = _tiny_spec()
        fast = run_experiment(
            spec, trials=8, seed=3, jobs=1, engine="paired"
        )
        ref = run_experiment(
            spec, trials=8, seed=3, jobs=1, engine="paired-ref"
        )
        assert _doc_of(fast) == _doc_of(ref)


class TestResolveJobs:
    def test_explicit_jobs_clamped_to_units(self):
        assert _resolve_jobs(8, 3) == 3
        assert _resolve_jobs(2, None) == 2
        assert _resolve_jobs(4, 0) == 1  # no units still means one worker

    def test_default_jobs_clamped_to_units(self):
        assert _resolve_jobs(None, 1) == 1


class _PoisonedPool:
    """ProcessPoolExecutor stand-in that fails the test if instantiated."""

    def __init__(self, *args, **kwargs):
        raise AssertionError(
            "a process pool was spawned for a single work unit"
        )


class TestSingleUnitInline:
    """One dispatched unit must run inline in the parent, pool-free."""

    @pytest.mark.parametrize("engine", ["paired", "percell"])
    def test_cold_single_unit_runs_inline(self, engine, monkeypatch, tmp_path):
        series = ("PURE",) if engine == "percell" else ("PURE", "ADAPT-L")
        spec = _tiny_spec(series)
        baseline = run_experiment(
            spec, trials=6, seed=7, jobs=1, chunk_size=6, engine=engine
        )
        monkeypatch.setattr(
            runner_mod, "ProcessPoolExecutor", _PoisonedPool
        )
        # trials == chunk_size and one x-value: exactly one work unit,
        # which must run inline even at jobs=4.
        result = run_experiment(
            spec, trials=6, seed=7, jobs=4, chunk_size=6, engine=engine
        )
        assert _doc_of(result) == _doc_of(baseline)

    def test_warm_cache_single_missing_unit_runs_inline(
        self, monkeypatch, tmp_path
    ):
        spec = _tiny_spec()
        store = tmp_path / "store"
        cold = run_experiment(
            spec,
            trials=12,
            seed=7,
            jobs=1,
            chunk_size=6,
            engine="paired",
            cache=store,
        )
        # Warm re-run with one extra chunk of trials: only the new
        # chunk is dispatched, so even jobs=4 must stay pool-free.
        monkeypatch.setattr(
            runner_mod, "ProcessPoolExecutor", _PoisonedPool
        )
        warm = run_experiment(
            spec,
            trials=18,
            seed=7,
            jobs=4,
            chunk_size=6,
            engine="paired",
            cache=store,
        )
        baseline = run_experiment(
            spec, trials=18, seed=7, jobs=1, chunk_size=6, engine="paired"
        )
        assert _doc_of(warm) == _doc_of(baseline)
        assert _doc_of(cold) != _doc_of(warm)  # more trials, new numbers
