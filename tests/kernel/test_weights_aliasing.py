"""Regression: the weight memo must never alias the caller's estimates.

The bug: for PURE/NORM the weights *equal* the estimates, and
``kernel_weights`` used to return (and memoize) the caller's ``est``
list itself — the weight cache and the estimate cache were one mutable
object, so a downstream mutation corrupted both for every later series
of the trial.  The fix returns an immutable tuple owned by the weight
cache alone; these tests pin that contract for every metric branch.
"""

import pytest

from repro.core.metrics import METRIC_NAMES, get_metric
from repro.experiments.context import TrialContext
from repro.kernel.metrics import kernel_weights
from repro.workload import WorkloadParams


@pytest.fixture
def cw():
    context = TrialContext.from_seed(WorkloadParams(m=3), 4242)
    return context.compiled


def test_returned_weights_never_alias_the_estimates(cw):
    est = cw.estimates_from_vals("WCET-AVG", lambda vals: sum(vals) / len(vals))
    for name in METRIC_NAMES:
        metric = get_metric(name, None)
        weights = kernel_weights(cw, metric, est, "WCET-AVG")
        assert weights is not est, name
        assert isinstance(weights, tuple), name  # immutable for all branches


def test_mutating_the_estimates_leaves_cached_weights_untouched(cw):
    est = cw.estimates_from_vals("WCET-AVG", lambda vals: sum(vals) / len(vals))
    metric = get_metric("PURE", None)
    weights = kernel_weights(cw, metric, est, "WCET-AVG")
    snapshot = tuple(weights)
    # The downstream mutation that used to corrupt both caches: the
    # caller scribbles over its estimate list after the weights were
    # memoized.
    for i in range(len(est)):
        est[i] = -1e9
    again = kernel_weights(cw, metric, [0.0] * cw.n, "WCET-AVG")
    assert again == snapshot  # memo hit: cached copy, not the est list
    fresh = cw.estimates_from_vals("WCET-AVG", lambda v: sum(v) / len(v))
    assert fresh[0] == -1e9  # the estimate cache saw the mutation...
    assert weights == snapshot  # ...but the weight tuple is untouched


def test_pure_and_norm_share_one_copy_without_aliasing(cw):
    """PURE and NORM still share one tuple per estimator (the slicing
    ``succ_w_master`` memo keys on weight identity) — but that tuple is
    the cache's own copy, not the estimate list."""
    est = cw.estimates_from_vals("WCET-AVG", lambda vals: sum(vals) / len(vals))
    pure = kernel_weights(cw, get_metric("PURE", None), est, "WCET-AVG")
    norm = kernel_weights(cw, get_metric("NORM", None), est, "WCET-AVG")
    assert pure is norm
    assert pure is not est
