"""Structural unit tests for :class:`repro.kernel.compiled.CompiledWorkload`.

Every flat array must agree with the public accessors of the graph and
platform it was compiled from — these are the invariants the slicing
and EDF fast paths lean on without re-checking.
"""

import pytest

from repro.core.estimation import WCET_AVG, WCET_MAX, estimate_map
from repro.experiments.context import TrialContext
from repro.graph.algorithms import TransitiveClosure
from repro.kernel.compiled import compile_workload
from repro.workload import WorkloadParams


@pytest.fixture(scope="module")
def compiled_pair():
    context = TrialContext.from_seed(WorkloadParams(m=4), 424242)
    return context.graph, context.platform, compile_workload(
        context.graph, context.platform
    )


class TestIndexing:
    def test_ids_are_insertion_order(self, compiled_pair):
        graph, _platform, cw = compiled_pair
        assert cw.ids == graph.task_ids()
        assert cw.n == graph.n_tasks
        assert all(cw.index[tid] == i for i, tid in enumerate(cw.ids))

    def test_rank_orders_like_id_strings(self, compiled_pair):
        _graph, _platform, cw = compiled_pair
        by_rank = sorted(range(cw.n), key=lambda i: cw.rank[i])
        assert [cw.ids[i] for i in by_rank] == sorted(cw.ids)

    def test_topo_matches_reference_walk(self, compiled_pair):
        graph, _platform, cw = compiled_pair
        assert [cw.ids[i] for i in cw.topo] == graph.topological_order()


class TestAdjacency:
    def test_succ_rows_preserve_edge_order(self, compiled_pair):
        graph, _platform, cw = compiled_pair
        for i, tid in enumerate(cw.ids):
            assert [cw.ids[j] for j in cw.succ_lists[i]] == graph.successors(
                tid
            )

    def test_pred_rows_carry_message_sizes(self, compiled_pair):
        graph, _platform, cw = compiled_pair
        for i, tid in enumerate(cw.ids):
            row = [(cw.ids[p], size) for p, size in cw.pred_ps[i]]
            assert [p for p, _s in row] == graph.predecessors(tid)
            for p, size in row:
                assert size == graph.message_size(p, tid)

    def test_indeg_and_boundary_tasks(self, compiled_pair):
        graph, _platform, cw = compiled_pair
        assert list(cw.indeg) == [
            len(graph.predecessors(t)) for t in cw.ids
        ]
        assert [cw.ids[i] for i in cw.input_idx] == graph.input_tasks()
        assert [cw.ids[i] for i in cw.output_idx] == graph.output_tasks()


class TestPlatformArrays:
    def test_wcet_matrix_and_eligibility(self, compiled_pair):
        graph, platform, cw = compiled_pair
        procs = list(platform.processors())
        assert cw.proc_ids == [p.id for p in procs]
        for i, tid in enumerate(cw.ids):
            task = graph.task(tid)
            for q, proc in enumerate(procs):
                c = task.wcet.get(proc.cls)
                cell = cw.wcet_pp[i * cw.m + q]
                if c is None:
                    assert cell == -1.0
                    assert not (cw.elig_mask[i] >> q) & 1
                else:
                    assert cell == c
                    assert (cw.elig_mask[i] >> q) & 1
            assert [
                (cw.proc_ids[q], c) for q, c in cw.elig_rows[i]
            ] == [
                (p.id, task.wcet[p.cls])
                for p in procs
                if p.cls in task.wcet
            ]

    def test_out_deadline_matches_reference_bound(self, compiled_pair):
        graph, _platform, cw = compiled_pair
        for i in cw.output_idx:
            assert cw.out_deadline[i] == graph.output_deadline(cw.ids[i])


class TestDerivedCaches:
    def test_parallel_set_sizes_match_closure(self, compiled_pair):
        graph, _platform, cw = compiled_pair
        closure = TransitiveClosure(graph)
        assert cw.parallel_set_sizes() == [
            closure.parallel_set_size(t) for t in cw.ids
        ]

    def test_estimates_from_vals_match_estimate_map(self, compiled_pair):
        graph, platform, cw = compiled_pair
        for est in (WCET_AVG, WCET_MAX):
            reference = estimate_map(graph, est, platform)
            direct = cw.estimates_from_vals(est.name, est.combine)
            assert direct == [reference[t] for t in cw.ids]

    def test_estimates_memo_is_shared_between_paths(self, compiled_pair):
        graph, platform, cw = compiled_pair
        direct = cw.estimates_from_vals(WCET_AVG.name, WCET_AVG.combine)
        via_map = cw.estimates_list(
            WCET_AVG.name, estimate_map(graph, WCET_AVG, platform)
        )
        assert direct is via_map  # same memo entry, same floats

    def test_succ_w_master_rows_are_shared_not_copied(self, compiled_pair):
        _graph, _platform, cw = compiled_pair
        weights = [1.0] * cw.n
        first = cw.succ_w_master(weights)
        second = cw.succ_w_master(weights)
        assert first is not second  # fresh outer list per slicing run
        assert all(a is b for a, b in zip(first, second))  # shared rows
        assert first[0] == [(j, 1.0) for j in cw.succ_lists[0]]
