"""Kernel-vs-reference bit-identity over randomized workloads.

The contract under test: for every configuration inside the kernel's
envelope, ``run_trial(use_kernel=True)`` equals
``run_trial(use_kernel=False)`` field for field — including NaN
placement, degenerate flags, and the failed task of an infeasible
schedule.  The sweep covers > 200 randomized workloads across graph
shapes, processor counts, estimators, all four metrics, and both
deadline-miss modes.
"""

import math

import pytest

from repro.core.metrics import METRIC_NAMES
from repro.core.slicing import distribute_deadlines
from repro.experiments import TrialConfig
from repro.experiments.context import TrialContext
from repro.experiments.runner import run_trial
from repro.workload import WorkloadParams

#: Graph/platform shape variations, cycled over the workload index.
SHAPES = (
    {},  # the paper's defaults: 40-60 tasks, depth 8-12
    {"n_tasks_range": (8, 16), "depth_range": (3, 6)},
    {"n_tasks_range": (20, 30), "depth_range": (5, 9), "fan_range": (1, 2)},
    {"etd": 1.0, "olr": 0.5},
    {"ccr": 1.0, "olr": 1.2},
    {"olr": 0.3},  # tight deadlines: misses and degenerate slices
    {"level_skew": 1.0, "ccr": 0.0},
    {
        "deadline_mode": "pair-surplus",
        "n_tasks_range": (10, 18),
        "depth_range": (3, 6),
    },
)
ESTIMATORS = ("AVG", "MAX", "MIN")
OUTCOME_FIELDS = (
    "success",
    "degenerate",
    "n_tasks",
    "min_laxity",
    "makespan",
    "max_lateness",
    "failed_task",
)
N_WORKLOADS = 208


def _same(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _chunks():
    """Workload indices in pytest-sized chunks (clearer failure units)."""
    step = 26
    return [range(lo, lo + step) for lo in range(0, N_WORKLOADS, step)]


@pytest.mark.parametrize("indices", _chunks(), ids=lambda r: f"ws{r.start}")
def test_trial_outcomes_bit_identical(indices):
    for ws in indices:
        shape = SHAPES[ws % len(SHAPES)]
        params = WorkloadParams(m=2 + ws % 5, **shape)
        context = TrialContext.from_seed(params, 7000 + ws)
        estimator = ESTIMATORS[ws % len(ESTIMATORS)]
        for metric in METRIC_NAMES:
            for lateness in (False, True):
                config = TrialConfig(
                    workload=params,
                    metric=metric,
                    estimator=estimator,
                    measure_lateness=lateness,
                )
                ref = run_trial(config, 7000 + ws, context, use_kernel=False)
                fast = run_trial(config, 7000 + ws, context, use_kernel=True)
                for name in OUTCOME_FIELDS:
                    assert _same(getattr(ref, name), getattr(fast, name)), (
                        f"workload {ws} (m={params.m}, shape={shape}), "
                        f"{metric}/{estimator}, lateness={lateness}: "
                        f"{name} {getattr(ref, name)!r} != "
                        f"{getattr(fast, name)!r}"
                    )


def test_assignments_bit_identical_including_insertion_order():
    """The materialized DeadlineAssignment equals the reference's —
    window floats, path tuples, degenerate flag, and even the window
    dict's insertion order."""
    for ws in range(24):
        params = WorkloadParams(m=2 + ws % 5)
        context = TrialContext.from_seed(params, 9000 + ws)
        for metric in METRIC_NAMES:
            ref = distribute_deadlines(
                context.graph, context.platform, metric, kernel=False
            )
            fast = distribute_deadlines(
                context.graph,
                context.platform,
                metric,
                kernel=True,
                compiled=context.compiled,
            )
            assert list(ref.windows) == list(fast.windows)
            for tid, w in ref.windows.items():
                fw = fast.windows[tid]
                assert w.arrival == fw.arrival
                assert w.relative_deadline == fw.relative_deadline
                assert w.absolute_deadline == fw.absolute_deadline
            assert ref.paths == fast.paths
            assert ref.degenerate == fast.degenerate
            assert ref.metric_name == fast.metric_name
            assert ref.estimator_name == fast.estimator_name
