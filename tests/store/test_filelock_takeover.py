"""Regression: stale-lock takeover must admit exactly one waiter.

The bug: the spin-fallback path judged staleness by comparing
wall-clock ``time.time()`` against the lock file's ``st_mtime`` and
then broke the lock non-atomically (unlink + create) — two waiters
could both judge the lock stale and both "acquire" it, and clock skew
on shared filesystems falsely aged fresh locks.  The fix takes over
through an ``O_CREAT | O_EXCL`` token claimed by exactly one waiter and
``os.replace``\\ d over the lock path.

These tests race two real processes (the thread lock inside one
process would mask the bug) against a deliberately staled lock and pin
mutual exclusion via a read-modify-write counter: any double
acquisition loses an increment.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import repro
from repro.store.filelock import FileLock

_SRC = str(Path(repro.__file__).resolve().parents[1])

#: Child: force the spin fallback (fcntl = None), then loop
#: acquire → read counter → sleep → write counter+1 → release.
#: Unserialized critical sections lose increments.
_WAITER = textwrap.dedent(
    """
    import sys, time
    import repro.store.filelock as fl

    fl.fcntl = None  # force the spin/takeover path
    lock_path, counter_path, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
    lock = fl.FileLock(lock_path, stale_after=0.4)
    for _ in range(rounds):
        lock.acquire()
        try:
            value = int(open(counter_path).read())
            time.sleep(0.005)  # widen the window a double-acquire races
            with open(counter_path, "w") as fh:
                fh.write(str(value + 1))
        finally:
            lock.release()
    print("DONE", flush=True)
    """
)


def _race(tmp_path, rounds: int) -> int:
    lock_path = tmp_path / "store.lock"
    counter = tmp_path / "counter"
    counter.write_text("0")
    # The deliberately staled lock: a dead holder's file that no
    # process refreshes.  Both waiters must watch it sit unchanged for
    # the full window; exactly one may then take it over.
    lock_path.write_text("")
    env = {**os.environ, "PYTHONPATH": _SRC}
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-c", _WAITER,
                str(lock_path), str(counter), str(rounds),
            ],
            stdout=subprocess.PIPE,
            env=env,
        )
        for _ in range(2)
    ]
    try:
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            assert b"DONE" in out
    finally:
        for proc in procs:  # pragma: no cover - cleanup on failure
            if proc.poll() is None:
                proc.kill()
    return int(counter.read_text())


class TestStaleTakeoverRace:
    def test_two_waiters_racing_a_stale_lock_exclude_each_other(
        self, tmp_path
    ):
        rounds = 5
        assert _race(tmp_path, rounds) == 2 * rounds

    def test_takeover_is_not_wedged_by_its_own_token(self, tmp_path):
        """A claimant that died between claiming the token and the
        replace must not wedge later waiters: the token ages out by the
        same observed-age rule."""
        lock_path = tmp_path / "w.lock"
        lock_path.write_text("")  # stale lock ...
        Path(f"{lock_path}.takeover").write_text("")  # ... and dead token
        import repro.store.filelock as fl

        original = fl.fcntl
        fl.fcntl = None
        try:
            lock = FileLock(lock_path, stale_after=0.3)
            start = time.monotonic()
            lock.acquire()
            lock.release()
            # Two observation windows (token, then lock) plus slack.
            assert time.monotonic() - start < 30.0
        finally:
            fl.fcntl = original

    def test_fresh_lock_is_never_broken_early(self, tmp_path):
        """A lock whose holder is alive (refreshing mtime) must not be
        taken over even when it is older than ``stale_after``."""
        import repro.store.filelock as fl

        lock_path = tmp_path / "fresh.lock"
        lock_path.write_text("")
        stop = time.monotonic() + 1.2
        original = fl.fcntl
        fl.fcntl = None
        try:
            lock = FileLock(lock_path, stale_after=0.4)
            acquired = False

            import threading

            def waiter():
                nonlocal acquired
                lock.acquire()
                acquired = True
                lock.release()

            thread = threading.Thread(target=waiter, daemon=True)
            thread.start()
            # The "holder" keeps touching the lock: as long as the file
            # keeps changing, the waiter's observed age resets.
            while time.monotonic() < stop:
                os.utime(lock_path)
                time.sleep(0.05)
                assert not acquired
            os.unlink(lock_path)  # holder releases; waiter wins cleanly
            thread.join(timeout=30)
            assert acquired
        finally:
            fl.fcntl = original
