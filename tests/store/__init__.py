"""Tests for the persistent content-addressed result store."""
