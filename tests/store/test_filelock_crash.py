"""Crash recovery: a writer SIGKILLed mid-append must not wedge the store.

The scenario distributed sweeps make routine: a worker process dies
(SIGKILL — no cleanup handlers) at the worst moment, holding the
store's cross-process file lock with half a record written and no
trailing newline.  The store's survival contract, each clause pinned
here:

* the ``flock`` lock dies with its holder — survivors acquire it
  without any timeout or manual unlock;
* the next append *heals* the torn tail (a separating newline) so new
  records are never glued onto garbage and lost;
* reads, ``verify()`` and ``compact()`` all treat the torn line as the
  one casualty — every record committed before the crash survives.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.store import TrialStore

_SRC = str(Path(repro.__file__).resolve().parents[1])

#: Child process: grab the store lock, append half a record (no
#: newline), fsync, report readiness, then hang until SIGKILLed.
_CRASHER = textwrap.dedent(
    """
    import sys, time
    from repro.store import FileLock

    root = sys.argv[1]
    lock = FileLock(root + "/.lock")
    lock.acquire()
    # A torn append of the record for key "aa...": shard file aa.jsonl.
    with open(root + "/segments/aa.jsonl", "ab") as fh:
        fh.write(b'{"key": "aa' + b'x' * 40)  # no newline, half a doc
        fh.flush()
    print("TORN", flush=True)
    time.sleep(600)  # hold the lock until killed
    """
)


def crash_a_writer(root) -> None:
    """Run the crasher against *root* and SIGKILL it mid-append."""
    proc = subprocess.Popen(
        [sys.executable, "-c", _CRASHER, str(root)],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": _SRC},
    )
    try:
        line = proc.stdout.readline()  # blocks until the torn write
        assert b"TORN" in line
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        proc.stdout.close()
        if proc.poll() is None:  # pragma: no cover - cleanup path
            proc.kill()


@pytest.fixture
def torn_store(tmp_path):
    """A store with real records whose last writer died mid-append."""
    store = TrialStore(tmp_path / "s")
    # "aaaa..." lands in shard aa.jsonl — the one the crasher tears.
    store.put("aa" * 32, {"v": 1})
    store.put("bb" * 32, {"v": 2})
    store.close()
    crash_a_writer(tmp_path / "s")
    return tmp_path / "s"


class TestCrashRecovery:
    def test_lock_dies_with_its_holder(self, torn_store):
        # Re-opening and appending must not block on the dead writer's
        # lock; a wedged lock would hang far beyond this deadline.
        start = time.monotonic()
        store = TrialStore(torn_store)
        store.put("cc" * 32, {"v": 3})
        assert time.monotonic() - start < 30.0
        store.close()

    def test_append_after_torn_tail_loses_no_records(self, torn_store):
        store = TrialStore(torn_store)
        # The healed append goes to the *torn* shard: key "aacc..."
        # shares the "aa" shard with the garbage tail.
        new_key = "aa" + "cc" * 31
        store.put(new_key, {"v": 4})
        assert store.get("aa" * 32) == {"v": 1}  # pre-crash survivor
        assert store.get(new_key) == {"v": 4}    # post-crash append
        store.close()
        # And both survive a cold reload of the segment files.
        reloaded = TrialStore(torn_store)
        assert reloaded.get("aa" * 32) == {"v": 1}
        assert reloaded.get(new_key) == {"v": 4}
        assert reloaded.get("bb" * 32) == {"v": 2}
        reloaded.close()

    def test_verify_classifies_the_tear(self, torn_store):
        store = TrialStore(torn_store)
        report = store.verify()
        assert report["torn"] == 1
        assert report["invalid"] == 0
        assert report["unique"] == 2
        store.close()

    def test_compact_drops_the_tear(self, torn_store):
        store = TrialStore(torn_store)
        store.compact()
        report = store.verify()
        assert report["torn"] == 0 and report["invalid"] == 0
        assert store.get("aa" * 32) == {"v": 1}
        assert store.get("bb" * 32) == {"v": 2}
        store.close()

    def test_two_crashes_in_a_row(self, torn_store):
        # A second writer dies the same way before anyone healed the
        # first tear; the shard now ends in doubly-torn garbage.
        crash_a_writer(torn_store)
        store = TrialStore(torn_store)
        new_key = "aa" + "dd" * 31
        store.put(new_key, {"v": 5})
        assert store.get(new_key) == {"v": 5}
        assert store.get("aa" * 32) == {"v": 1}
        store.close()
