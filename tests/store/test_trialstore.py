"""Unit tests for :mod:`repro.store` — keys, durability, concurrency.

The store's contract is narrow but load-bearing: content-addressed
keys that change with the code salt, durable appends that survive
reopen and torn tails, atomic compaction with oldest-first eviction,
and whole-line append atomicity under concurrent writer *processes*
(the ``jobs > 1`` sweep case).  Each test pins one clause.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import pytest

from repro.errors import StoreError
from repro.store import CODE_SALT, TrialStore, store_key


class TestStoreKey:
    def test_deterministic_and_order_insensitive(self):
        a = store_key("cell", {"x": 1, "y": [2, 3]})
        b = store_key("cell", {"y": [2, 3], "x": 1})
        assert a == b
        assert len(a) == 64 and int(a, 16) >= 0

    def test_salt_kind_and_payload_all_change_the_key(self):
        base = store_key("cell", {"x": 1})
        assert store_key("cell", {"x": 1}, salt="other/2") != base
        assert store_key("assignment", {"x": 1}) != base
        assert store_key("cell", {"x": 2}) != base
        assert store_key("cell", {"x": 1}, salt=CODE_SALT) == base

    def test_non_finite_payload_rejected(self):
        # Canonical addressing demands every writer derive the same
        # bytes; NaN serializations are not portable, so refuse them.
        with pytest.raises(ValueError):
            store_key("cell", {"x": float("nan")})


class TestTrialStore:
    def test_roundtrip_including_nan_values(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        key = store_key("t", {"i": 1})
        value = {"mean": float("nan"), "count": 3, "xs": [1.5, -2.0]}
        store.put(key, value)
        got = store.get(key)
        assert got["count"] == 3 and got["xs"] == [1.5, -2.0]
        assert math.isnan(got["mean"])

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        assert store.get(store_key("t", {"i": 404})) is None
        stats = store.stats()
        assert (stats.hits, stats.misses) == (0, 1)
        assert stats.hit_rate == 0.0

    def test_reopen_sees_previous_appends(self, tmp_path):
        keys = [store_key("t", {"i": i}) for i in range(20)]
        with TrialStore(tmp_path / "s") as store:
            assert store.put_many((k, {"i": i}) for i, k in enumerate(keys)) == 20
        reopened = TrialStore(tmp_path / "s")
        for i, key in enumerate(keys):
            assert reopened.get(key) == {"i": i}
        assert reopened.stats().hits == 20

    def test_put_skips_existing_keys(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        key = store_key("t", {"i": 1})
        store.put(key, {"v": 1})
        size = store.total_bytes()
        assert store.put_many([(key, {"v": 1})]) == 0
        assert store.total_bytes() == size
        assert store.stats().appends == 1

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        key = store_key("t", {"i": 1})
        store.put(key, {"v": 1})
        # Simulate a writer killed mid-append: a partial record with no
        # terminating newline after an intact line.
        shard = tmp_path / "s" / "segments" / f"{key[:2]}.jsonl"
        with open(shard, "ab") as fh:
            fh.write(b'{"k": "deadbeef", "v": {"tr')
        reopened = TrialStore(tmp_path / "s")
        assert reopened.get(key) == {"v": 1}

    def test_foreign_garbage_line_is_skipped(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        key = store_key("t", {"i": 1})
        store.put(key, {"v": 1})
        shard = tmp_path / "s" / "segments" / f"{key[:2]}.jsonl"
        with open(shard, "ab") as fh:
            fh.write(b"not json at all\n")
        reopened = TrialStore(tmp_path / "s")
        assert reopened.get(key) == {"v": 1}

    def test_compact_dedups_manual_duplicates(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        key = store_key("t", {"i": 1})
        store.put(key, {"v": 1})
        shard = tmp_path / "s" / "segments" / f"{key[:2]}.jsonl"
        line = shard.read_bytes()
        with open(shard, "ab") as fh:
            fh.write(line * 3)  # crashed writers may duplicate records
        before = store.total_bytes()
        assert store.compact() == 0  # dedup is not eviction
        assert store.total_bytes() < before
        assert store.get(key) == {"v": 1}

    def test_compact_evicts_oldest_to_budget(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        keys = [store_key("t", {"i": i}) for i in range(40)]
        store.put_many((k, {"i": i, "pad": "x" * 50}) for i, k in enumerate(keys))
        budget = store.total_bytes() // 2
        evicted = store.compact(max_bytes=budget)
        assert evicted > 0
        assert store.total_bytes() <= budget
        assert store.stats().evictions == evicted
        survivors = sum(1 for k in keys if store.get(k) is not None)
        assert survivors == 40 - evicted

    def test_max_bytes_enforced_on_open(self, tmp_path):
        with TrialStore(tmp_path / "s") as store:
            store.put_many(
                (store_key("t", {"i": i}), {"i": i, "pad": "x" * 50})
                for i in range(40)
            )
            budget = store.total_bytes() // 2
        bounded = TrialStore(tmp_path / "s", max_bytes=budget)
        assert bounded.total_bytes() <= budget

    def test_closed_store_rejects_writes(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        store.close()
        with pytest.raises(StoreError):
            store.put(store_key("t", {"i": 1}), {"v": 1})

    def test_foreign_manifest_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "MANIFEST.json").write_text(
            json.dumps({"format": "somebody-else/9"})
        )
        with pytest.raises(StoreError, match="format"):
            TrialStore(root)

    def test_stats_since_is_a_counter_delta(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        key = store_key("t", {"i": 1})
        store.put(key, {"v": 1})
        before = store.stats()
        store.get(key)
        store.get(store_key("t", {"i": 2}))
        delta = store.stats().since(before)
        assert (delta.hits, delta.misses, delta.appends) == (1, 1, 0)
        assert delta.records == 1  # states stay absolute


def _append_worker(root: str, which: int, n: int) -> None:
    store = TrialStore(root)
    # Each writer appends its own keys plus a contended shared range,
    # in an interleaving-friendly one-record-per-call pattern.
    for i in range(n):
        store.put(store_key("t", {"who": which, "i": i}), {"who": which, "i": i})
        store.put(store_key("t", {"shared": i % 10}), {"shared": i % 10})
    store.close()


class TestConcurrentAppend:
    def test_two_processes_append_without_corruption(self, tmp_path):
        """Two writer processes interleave; no record is lost or torn."""
        root = tmp_path / "s"
        TrialStore(root).close()  # create the manifest up front
        n = 50
        workers = [
            multiprocessing.Process(target=_append_worker, args=(str(root), w, n))
            for w in (1, 2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        # Every segment line must be intact JSON (whole-line appends).
        for segment in (root / "segments").glob("*.jsonl"):
            for line in segment.read_bytes().splitlines():
                record = json.loads(line)
                assert set(record) == {"k", "v"}
        store = TrialStore(root)
        for which in (1, 2):
            for i in range(n):
                key = store_key("t", {"who": which, "i": i})
                assert store.get(key) == {"who": which, "i": i}
        for i in range(10):
            assert store.get(store_key("t", {"shared": i})) == {"shared": i}
