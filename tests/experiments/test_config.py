"""Unit tests for declarative experiment documents."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    TrialConfig,
    apply_setting,
    load_spec,
    run_experiment,
    spec_from_dict,
)


def doc():
    return {
        "name": "my-sweep",
        "title": "ADAPT-L vs PURE over CCR",
        "x": {"field": "workload.ccr", "values": [0.0, 0.5]},
        "x_label": "CCR",
        "series": [
            {"label": "PURE", "set": {"metric": "PURE"}},
            {"label": "ADAPT-L", "set": {"metric": "ADAPT-L"}},
        ],
        "base": {
            "workload.m": 2,
            "workload.olr": 0.7,
            "workload.n_tasks_range": [10, 14],
            "workload.depth_range": [4, 6],
            "adaptive.k_l": 0.3,
        },
    }


class TestApplySetting:
    def test_trial_level(self):
        c = apply_setting(TrialConfig(), "metric", "NORM")
        assert c.metric == "NORM"
        c = apply_setting(c, "contention_bus", True)
        assert c.contention_bus

    def test_workload_scope(self):
        c = apply_setting(TrialConfig(), "workload.m", 5)
        assert c.workload.m == 5

    def test_tuple_fields_coerced(self):
        c = apply_setting(TrialConfig(), "workload.depth_range", [3, 4])
        assert c.workload.depth_range == (3, 4)

    def test_adaptive_scope(self):
        c = apply_setting(TrialConfig(), "adaptive.k_g", 2.0)
        assert c.adaptive.k_g == 2.0

    @pytest.mark.parametrize(
        "path", ["nonsense", "workload.warp", "adaptive.flux", "zz.m"]
    )
    def test_unknown_paths_rejected(self, path):
        with pytest.raises(ExperimentError):
            apply_setting(TrialConfig(), path, 1)


class TestSpecFromDict:
    def test_builds_spec(self):
        spec = spec_from_dict(doc())
        assert spec.name == "my-sweep"
        assert spec.x_values == [0.0, 0.5]
        assert spec.series == ["PURE", "ADAPT-L"]
        cfg = spec.config_for(0.5, "ADAPT-L")
        assert cfg.metric == "ADAPT-L"
        assert cfg.workload.ccr == 0.5
        assert cfg.workload.m == 2
        assert cfg.adaptive.k_l == 0.3

    def test_series_overrides_base(self):
        d = doc()
        d["base"]["metric"] = "NORM"
        spec = spec_from_dict(d)
        assert spec.config_for(0.0, "PURE").metric == "PURE"

    def test_missing_keys_rejected(self):
        with pytest.raises(ExperimentError):
            spec_from_dict({"name": "x"})

    def test_empty_series_rejected(self):
        d = doc()
        d["series"] = []
        with pytest.raises(ExperimentError):
            spec_from_dict(d)

    def test_invalid_setting_fails_fast(self):
        d = doc()
        d["base"]["workload.bogus"] = 1
        with pytest.raises(ExperimentError):
            spec_from_dict(d)

    def test_runs_end_to_end(self):
        spec = spec_from_dict(doc())
        result = run_experiment(spec, trials=3, seed=1, jobs=1)
        assert len(result.cells) == 4


class TestLoadSpec:
    def test_from_file(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(doc()))
        spec = load_spec(path)
        assert spec.name == "my-sweep"

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ExperimentError):
            load_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_spec(tmp_path / "ghost.json")

    def test_cli_runs_config(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "exp.json"
        payload = doc()
        payload["x"]["values"] = [0.0]
        path.write_text(json.dumps(payload))
        code = main(
            ["--config", str(path), "--trials", "2", "--jobs", "1",
             "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "my-sweep.json").exists()
        assert "my-sweep" in capsys.readouterr().out
