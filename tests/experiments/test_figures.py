"""Unit tests for the figure registry (§6 experiment definitions)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import FIGURES, get_figure_spec


class TestRegistry:
    def test_all_paper_figures_present(self):
        for name in ("fig2", "fig3", "fig4", "fig5", "fig6"):
            assert name in FIGURES

    def test_ablations_present(self):
        for name in ("abl-kg", "abl-kl", "abl-thres", "abl-ccr"):
            assert name in FIGURES

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            get_figure_spec("fig99")


class TestFigureDefinitions:
    def test_fig2_sweeps_system_size(self):
        spec = get_figure_spec("fig2")
        assert list(spec.x_values) == [2, 3, 4, 5, 6, 7, 8]
        assert spec.series == ("PURE", "NORM", "ADAPT-G", "ADAPT-L")
        cfg = spec.config_for(5, "NORM")
        assert cfg.workload.m == 5
        assert cfg.metric == "NORM"
        assert cfg.workload.olr == 0.8 and cfg.workload.etd == 0.25

    def test_fig3_sweeps_olr_at_three_processors(self):
        spec = get_figure_spec("fig3")
        cfg = spec.config_for(0.6, "PURE")
        assert cfg.workload.olr == 0.6
        assert cfg.workload.m == 3

    def test_fig4_sweeps_etd(self):
        spec = get_figure_spec("fig4")
        assert list(spec.x_values) == [0.0, 0.25, 0.5, 0.75, 1.0]
        cfg = spec.config_for(0.5, "ADAPT-L")
        assert cfg.workload.etd == 0.5

    def test_fig5_fig6_sweep_wcet_strategies(self):
        for name in ("fig5", "fig6"):
            spec = get_figure_spec(name)
            assert spec.series == ("WCET-AVG", "WCET-MAX", "WCET-MIN")
            cfg = spec.config_for(spec.x_values[0], "WCET-MAX")
            assert cfg.metric == "ADAPT-L"
            assert cfg.estimator == "WCET-MAX"

    def test_paper_default_adaptive_params(self):
        cfg = get_figure_spec("fig2").config_for(3, "ADAPT-L")
        assert cfg.adaptive.k_g == 1.5
        assert cfg.adaptive.k_l == 0.2
        assert cfg.adaptive.c_thres_factor == 1.0

    def test_ablation_kg_varies_factor(self):
        spec = get_figure_spec("abl-kg")
        assert spec.config_for(0.0, "ADAPT-G").adaptive.k_g == 0.0
        assert spec.config_for(3.0, "ADAPT-G").adaptive.k_g == 3.0

    def test_ablation_ccr_toggles_bus_model(self):
        spec = get_figure_spec("abl-ccr")
        assert not spec.config_for(0.1, "nominal bus").contention_bus
        assert spec.config_for(0.1, "contention bus").contention_bus

    def test_every_figure_builds_all_cells(self):
        for name in FIGURES:
            spec = get_figure_spec(name)
            cells = spec.cells()
            assert len(cells) == len(spec.x_values) * len(spec.series)
