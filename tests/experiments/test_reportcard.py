"""Unit tests for the combined report builder."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    build_report,
    get_figure_spec,
    load_result_doc,
    result_doc_markdown,
    run_experiment,
    save_json,
)
from repro.experiments.spec import ExperimentSpec, TrialConfig
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=2, n_tasks_range=(10, 14), depth_range=(4, 6))


def tiny_result(name="tiny", measure_lateness=False):
    def config(x, metric):
        return TrialConfig(
            workload=FAST, metric=metric, measure_lateness=measure_lateness
        )

    spec = ExperimentSpec(
        name=name, title=f"Title of {name}", x_label="m", x_values=(2,),
        series=("PURE", "ADAPT-L"), config_for=config,
        paper_reference="test",
    )
    return run_experiment(spec, trials=3, seed=1, jobs=1)


class TestLoadResultDoc:
    def test_round_trip(self, tmp_path):
        result = tiny_result()
        save_json(result, tmp_path / "tiny.json")
        doc = load_result_doc(tmp_path / "tiny.json")
        assert doc["name"] == "tiny"

    def test_rejects_other_json(self, tmp_path):
        (tmp_path / "x.json").write_text('{"format": "other/1"}')
        with pytest.raises(ExperimentError):
            load_result_doc(tmp_path / "x.json")

    def test_rejects_bad_json(self, tmp_path):
        (tmp_path / "x.json").write_text("{nope")
        with pytest.raises(ExperimentError):
            load_result_doc(tmp_path / "x.json")


class TestResultDocMarkdown:
    def test_contains_table_and_provenance(self, tmp_path):
        result = tiny_result()
        save_json(result, tmp_path / "tiny.json")
        md = result_doc_markdown(load_result_doc(tmp_path / "tiny.json"))
        assert md.startswith("### Title of tiny")
        assert "| m | PURE | ADAPT-L |" in md
        assert "trials/cell" in md

    def test_lateness_block_when_measured(self, tmp_path):
        result = tiny_result(measure_lateness=True)
        save_json(result, tmp_path / "late.json")
        md = result_doc_markdown(load_result_doc(tmp_path / "late.json"))
        assert "Mean maximum lateness" in md


class TestBuildReport:
    def test_combines_and_orders(self, tmp_path):
        for name in ("abl-z", "fig9", "custom"):
            save_json(tiny_result(name), tmp_path / f"{name}.json")
        # a non-result JSON must be skipped silently
        (tmp_path / "heatmap.json").write_text(json.dumps({"format": "x"}))
        report = build_report(tmp_path, title="My runs")
        assert report.startswith("# My runs")
        fig = report.index("fig9")
        abl = report.index("abl-z")
        custom = report.index("custom")
        assert fig < abl < custom

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            build_report(tmp_path)

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            build_report(tmp_path / "ghost")

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["abl-kl", "--trials", "2", "--jobs", "1",
             "--out", str(tmp_path), "--report"]
        )
        assert code == 0
        assert (tmp_path / "REPORT.md").exists()
        assert "abl-kl" in (tmp_path / "REPORT.md").read_text()

    def test_cli_report_requires_out(self, capsys):
        from repro.cli import main

        assert main(["--report"]) == 2


class TestEveryFigureSmokes:
    def test_all_registered_figures_run_end_to_end(self):
        """Two trials through every registered experiment — the net that
        catches a broken figure definition before a full-size run."""
        from repro.experiments import FIGURES

        for name in FIGURES:
            spec = get_figure_spec(name)
            # shrink the sweep to its endpoints for speed
            small = ExperimentSpec(
                name=spec.name, title=spec.title, x_label=spec.x_label,
                x_values=(spec.x_values[0], spec.x_values[-1]),
                series=spec.series, config_for=spec.config_for,
            )
            result = run_experiment(small, trials=2, seed=1, jobs=1)
            assert len(result.cells) == 2 * len(spec.series), name
