"""Cache-invariance tests for ``run_experiment(cache=...)``.

The store must be invisible in the numbers: cache off, cold and warm
runs — across both engines and serial/parallel execution — produce the
same serialized result, byte for byte.  Comparisons go through
canonical JSON *text* because all-fail cells carry NaN aggregates and
``NaN != NaN`` would mark identical docs as different.  The delta-sweep
test pins the key-granularity design: keys cover (config, seed chunk)
only, so adding a series to a swept grid recomputes nothing else.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import ExperimentSpec, TrialConfig, run_experiment
from repro.experiments.runner import _resolve_jobs
from repro.store import TrialStore
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=3, n_tasks_range=(12, 16), depth_range=(4, 6))


def small_spec(series=("PURE", "NORM", "ADAPT-L")):
    def config(x, metric):
        return TrialConfig(
            workload=FAST.with_overrides(m=int(x)), metric=metric
        )

    return ExperimentSpec(
        name="cache-invariance",
        title="cache invariance",
        x_label="m",
        x_values=(2, 3),
        series=series,
        config_for=config,
    )


def result_text(spec, *, jobs=1, engine="paired", cache=None):
    result = run_experiment(
        spec, trials=12, seed=99, jobs=jobs, chunk_size=8,
        engine=engine, cache=cache,
    )
    doc = result.to_dict()
    doc.pop("elapsed_seconds", None)
    # json round-trips float64 (and NaN) exactly, and is comparable.
    return json.dumps(doc, sort_keys=True), result.cache_stats


class TestCacheInvariance:
    @pytest.mark.parametrize("engine", ["paired", "percell"])
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_off_cold_warm_identical(self, tmp_path, engine, jobs):
        spec = small_spec()
        off, off_stats = result_text(spec, jobs=jobs, engine=engine)
        assert off_stats is None  # no cache, no stats
        store = TrialStore(tmp_path / "s")
        cold, cold_stats = result_text(
            spec, jobs=jobs, engine=engine, cache=store
        )
        warm, warm_stats = result_text(
            spec, jobs=jobs, engine=engine, cache=store
        )
        assert cold == off
        assert warm == off
        assert cold_stats.hits == 0 and cold_stats.misses > 0
        assert warm_stats.misses == 0
        assert warm_stats.hits == cold_stats.misses
        assert warm_stats.hit_rate == 1.0

    def test_cross_engine_and_jobs_share_the_store(self, tmp_path):
        """Chunk keys ignore jobs and engine, so any run warms every other."""
        spec = small_spec()
        store = TrialStore(tmp_path / "s")
        cold, _ = result_text(spec, jobs=1, engine="percell", cache=store)
        warm, warm_stats = result_text(
            spec, jobs=4, engine="paired", cache=store
        )
        assert warm == cold
        assert warm_stats.misses == 0

    def test_delta_series_recomputes_only_the_new_series(self, tmp_path):
        store = TrialStore(tmp_path / "s")
        base_text, base_stats = result_text(
            small_spec(("PURE", "NORM")), cache=store
        )
        delta_text, delta_stats = result_text(
            small_spec(("PURE", "NORM", "ADAPT-L")), cache=store
        )
        # 12 trials / chunk_size 8 -> 2 chunks per x, 2 x-values: the
        # widened sweep misses exactly the 4 new-series chunks and hits
        # the 8 existing ones.
        assert base_stats.misses == 8 and base_stats.hits == 0
        assert delta_stats.misses == 4 and delta_stats.hits == 8
        off_text, _ = result_text(small_spec(("PURE", "NORM", "ADAPT-L")))
        assert delta_text == off_text
        # The base sweep's cells are a strict subset of the widened one.
        def cells_by_label(text):
            doc = json.loads(text)
            return {
                (c["x_index"], doc["series"][c["series_index"]]): {
                    k: v
                    for k, v in c.items()
                    if k not in ("x_index", "series_index")
                }
                for c in doc["cells"]
            }

        base_cells = cells_by_label(base_text)
        delta_cells = cells_by_label(delta_text)
        for key, cell in base_cells.items():
            assert json.dumps(delta_cells[key], sort_keys=True) == json.dumps(
                cell, sort_keys=True
            )

    def test_raised_trial_count_reuses_existing_chunks(self, tmp_path):
        """trials=8 stores one chunk per cell; trials=12 reuses it."""
        spec = small_spec(("PURE",))
        store = TrialStore(tmp_path / "s")
        run_experiment(
            spec, trials=8, seed=99, jobs=1, chunk_size=8, cache=store
        )
        result = run_experiment(
            spec, trials=12, seed=99, jobs=1, chunk_size=8, cache=store
        )
        assert result.cache_stats.hits == 2  # the [0:8) chunk of each x
        assert result.cache_stats.misses == 2  # the new [8:12) chunks

    def test_cache_accepts_a_path_and_owns_the_store(self, tmp_path):
        spec = small_spec()
        off, _ = result_text(spec)
        cold, _ = result_text(spec, cache=str(tmp_path / "s"))
        warm, warm_stats = result_text(spec, cache=tmp_path / "s")
        assert cold == off and warm == off
        assert warm_stats.misses == 0

    def test_cache_stats_not_serialized(self, tmp_path):
        result = run_experiment(
            small_spec(("PURE",)), trials=8, seed=99, jobs=1,
            cache=tmp_path / "s",
        )
        assert result.cache_stats is not None
        assert "cache_stats" not in result.to_dict()


class TestResolveJobs:
    def test_explicit_jobs_clamped_to_units(self):
        assert _resolve_jobs(8, 3) == 3
        assert _resolve_jobs(2, 100) == 2

    def test_zero_units_still_yields_one_worker(self):
        assert _resolve_jobs(8, 0) == 1

    def test_default_is_cpu_count_at_least_one(self):
        assert _resolve_jobs(None) >= 1
        assert _resolve_jobs(None, 1) == 1
