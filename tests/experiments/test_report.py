"""Unit tests for experiment report rendering and persistence."""

import csv
import json

import pytest

from repro.analysis import BinomialEstimate
from repro.experiments.report import (
    render_report,
    result_chart,
    result_markdown,
    result_table,
    save_csv,
    save_json,
)
from repro.experiments.runner import CellResult, ExperimentResult


@pytest.fixture
def result():
    res = ExperimentResult(
        name="fig2",
        title="Success ratio vs m",
        x_label="m",
        x_values=[2, 3],
        series=["PURE", "ADAPT-L"],
        trials_per_cell=10,
        seed=1,
        paper_reference="Figure 2",
    )
    values = {(0, 0): 2, (0, 1): 5, (1, 0): 8, (1, 1): 10}
    for key, succ in values.items():
        res.cells[key] = CellResult(BinomialEstimate(succ, 10))
    return res


class TestTables:
    def test_result_table(self, result):
        out = result_table(result)
        assert "PURE" in out and "ADAPT-L" in out
        assert "0.200" in out and "1.000" in out

    def test_result_table_with_ci(self, result):
        out = result_table(result, with_ci=True)
        assert "[" in out and "]" in out

    def test_markdown(self, result):
        out = result_markdown(result)
        assert out.startswith("| m |")
        assert "|---|" in out


class TestChart:
    def test_chart_renders_series(self, result):
        out = result_chart(result)
        assert "o=PURE" in out
        assert "x=ADAPT-L" in out

    def test_render_report_combines(self, result):
        out = render_report(result)
        assert "Figure 2" in out
        assert "trials/cell=10" in out


class TestPersistence:
    def test_save_json(self, result, tmp_path):
        path = tmp_path / "r.json"
        save_json(result, path)
        doc = json.loads(path.read_text())
        assert doc["name"] == "fig2"
        assert len(doc["cells"]) == 4

    def test_save_csv(self, result, tmp_path):
        path = tmp_path / "r.csv"
        save_csv(result, path)
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows[0] == ["m", "PURE", "ADAPT-L"]
        assert float(rows[1][1]) == pytest.approx(0.2)
        assert float(rows[2][2]) == pytest.approx(1.0)
