"""Unit tests for the rank-robustness analysis."""

import math

import pytest

from repro.analysis import BinomialEstimate
from repro.errors import ExperimentError
from repro.experiments import (
    RobustnessResult,
    TrialConfig,
    robustness_table,
    run_robustness,
)
from repro.experiments.runner import CellResult
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=2, n_tasks_range=(10, 14), depth_range=(4, 6))


def builder(conf, metric):
    return TrialConfig(
        workload=FAST.with_overrides(**conf), metric=metric
    )


def manual(metrics, configs, table):
    """Build a RobustnessResult from a {(ci, metric): successes} table."""
    res = RobustnessResult(metrics=list(metrics), configurations=list(configs))
    res.trials_per_cell = 10
    for key, succ in table.items():
        res.ratios[key] = CellResult(BinomialEstimate(succ, 10))
    for ci in range(len(configs)):
        values = [res.ratio(ci, m) for m in metrics]
        if max(values) < 0.02 or min(values) > 0.98:
            continue
        res.informative.append(ci)
    return res


class TestRankStatistics:
    def test_ranks_and_regret(self):
        res = manual(
            ["A", "B"],
            [{}, {}],
            {(0, "A"): 8, (0, "B"): 4, (1, "A"): 3, (1, "B"): 6},
        )
        assert res.ranks("A") == [1, 2]
        assert res.ranks("B") == [2, 1]
        assert res.mean_rank("A") == 1.5
        assert res.worst_rank("A") == 2
        assert res.first_place_share("A") == 0.5
        assert res.max_regret("A") == pytest.approx(0.3)

    def test_ties_share_the_better_rank(self):
        res = manual(["A", "B"], [{}], {(0, "A"): 5, (0, "B"): 5})
        assert res.ranks("A") == [1]
        assert res.ranks("B") == [1]

    def test_saturated_configs_excluded(self):
        res = manual(
            ["A", "B"],
            [{}, {}],
            {(0, "A"): 10, (0, "B"): 10, (1, "A"): 7, (1, "B"): 3},
        )
        assert res.informative == [1]
        assert res.ranks("A") == [1]

    def test_all_failed_configs_excluded(self):
        res = manual(["A", "B"], [{}], {(0, "A"): 0, (0, "B"): 0})
        assert res.informative == []
        assert math.isnan(res.mean_rank("A"))


class TestRunRobustness:
    def test_end_to_end(self):
        configs = [{"olr": 0.6}, {"olr": 0.8}]
        res = run_robustness(
            ["PURE", "ADAPT-L"],
            configs,
            builder,
            trials=6,
            seed=3,
            jobs=1,
        )
        assert len(res.ratios) == 4
        assert all(0 <= c.ratio <= 1 for c in res.ratios.values())
        table = robustness_table(res)
        assert "mean rank" in table and "PURE" in table

    def test_paired_seeds_across_metrics(self):
        # identical metric twice => identical counts per configuration
        res = run_robustness(
            ["PURE", "NORM"],
            [{"olr": 0.6, "etd": 0.0}],
            builder,
            trials=8,
            seed=5,
            jobs=1,
        )
        # at ETD=0 PURE and NORM coincide exactly (shared workloads)
        assert res.ratios[(0, "PURE")].estimate == res.ratios[
            (0, "NORM")
        ].estimate

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(metrics=[], configurations=[{}]),
            dict(metrics=["A", "A"], configurations=[{}]),
            dict(metrics=["A"], configurations=[]),
            dict(metrics=["A"], configurations=[{}], trials=0),
        ],
    )
    def test_validation(self, kwargs):
        kwargs.setdefault("trials", 1)
        with pytest.raises(ExperimentError):
            run_robustness(
                kwargs.pop("metrics"),
                kwargs.pop("configurations"),
                builder,
                **kwargs,
            )
