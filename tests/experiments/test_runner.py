"""Unit tests for the experiment runner (determinism, aggregation)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentSpec,
    TrialConfig,
    run_cell,
    run_experiment,
    run_trial,
)
from repro.experiments.runner import CellResult, _cell_seeds
from repro.analysis import BinomialEstimate
from repro.rng import derive_seed
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=3, n_tasks_range=(12, 16), depth_range=(4, 6))


def tiny_spec(series=("PURE", "ADAPT-L")):
    def config(x, metric):
        return TrialConfig(workload=FAST.with_overrides(m=int(x)), metric=metric)

    return ExperimentSpec(
        name="tiny",
        title="tiny",
        x_label="m",
        x_values=(2, 3),
        series=series,
        config_for=config,
    )


class TestRunTrial:
    def test_outcome_fields(self):
        out = run_trial(TrialConfig(workload=FAST), derive_seed(0, 0))
        assert isinstance(out.success, bool)
        assert out.n_tasks >= 12
        assert out.makespan > 0.0

    def test_deterministic(self):
        c = TrialConfig(workload=FAST, metric="ADAPT-L")
        assert run_trial(c, 42) == run_trial(c, 42)

    def test_seed_changes_outcome_distribution(self):
        c = TrialConfig(workload=FAST)
        outs = {run_trial(c, s).makespan for s in range(8)}
        assert len(outs) > 1

    def test_contention_bus_flag(self):
        c = TrialConfig(workload=FAST, contention_bus=True)
        out = run_trial(c, 7)
        assert isinstance(out.success, bool)


class TestRunCell:
    def test_aggregates(self):
        c = TrialConfig(workload=FAST)
        cell = run_cell(c, [derive_seed(1, i) for i in range(10)])
        assert cell.trials == 10
        assert 0 <= cell.estimate.successes <= 10
        assert cell.mean_min_laxity == cell.mean_min_laxity  # not NaN

    def test_merge(self):
        a = CellResult(BinomialEstimate(3, 5), degenerate=1, mean_min_laxity=2.0)
        b = CellResult(BinomialEstimate(1, 5), degenerate=0, mean_min_laxity=4.0)
        m = a.merged(b)
        assert m.trials == 10
        assert m.estimate.successes == 4
        assert m.degenerate == 1
        assert m.mean_min_laxity == pytest.approx(3.0)


class TestRunExperiment:
    def test_shape_and_provenance(self):
        res = run_experiment(tiny_spec(), trials=6, seed=5, jobs=1)
        assert res.name == "tiny"
        assert len(res.cells) == 4  # 2 x-values x 2 series
        assert res.trials_per_cell == 6
        assert all(c.trials == 6 for c in res.cells.values())
        assert len(res.ratios("PURE")) == 2

    def test_invariant_to_chunk_size(self):
        r1 = run_experiment(tiny_spec(), trials=8, seed=5, jobs=1, chunk_size=3)
        r2 = run_experiment(tiny_spec(), trials=8, seed=5, jobs=1, chunk_size=8)
        for key in r1.cells:
            assert r1.cells[key].estimate == r2.cells[key].estimate

    def test_invariant_to_parallelism(self):
        r1 = run_experiment(tiny_spec(), trials=8, seed=5, jobs=1)
        r2 = run_experiment(tiny_spec(), trials=8, seed=5, jobs=2)
        for key in r1.cells:
            assert r1.cells[key].estimate == r2.cells[key].estimate

    def test_cell_lookup_and_errors(self):
        res = run_experiment(tiny_spec(), trials=4, seed=1, jobs=1)
        assert res.cell(0, "PURE").trials == 4
        with pytest.raises(ExperimentError):
            res.cell(0, "NOPE")

    def test_zero_trials_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment(tiny_spec(), trials=0)

    def test_nonpositive_jobs_rejected(self):
        # a domain error, not ProcessPoolExecutor's opaque ValueError
        with pytest.raises(ExperimentError, match="jobs must be at least 1"):
            run_experiment(tiny_spec(), trials=4, jobs=0)
        with pytest.raises(ExperimentError, match="jobs"):
            run_experiment(tiny_spec(), trials=4, jobs=-2)

    def test_to_dict(self):
        res = run_experiment(tiny_spec(), trials=4, seed=1, jobs=1)
        doc = res.to_dict()
        assert doc["name"] == "tiny"
        assert len(doc["cells"]) == 4
        assert all("interval" in c for c in doc["cells"])


class TestSeeds:
    def test_cell_seeds_unique_across_sweep_points(self):
        s1 = _cell_seeds(9, 0, 50)
        s2 = _cell_seeds(9, 1, 50)
        assert not (set(s1) & set(s2))

    def test_cell_seeds_stable(self):
        assert _cell_seeds(9, 2, 10) == _cell_seeds(9, 2, 10)

    def test_series_share_workloads(self):
        """Paired design: all series see the same graphs at each x.

        The strongest witness: at ETD = 0 the PURE/NORM/ADAPT-G
        distributions are identical per graph, so their success counts
        must agree exactly (the paper's §6.3 convergence).
        """
        def config(x, metric):
            return TrialConfig(
                workload=FAST.with_overrides(etd=0.0), metric=metric
            )

        spec = ExperimentSpec(
            name="etd0", title="t", x_label="x", x_values=(1,),
            series=("PURE", "NORM", "ADAPT-G"), config_for=config,
        )
        res = run_experiment(spec, trials=16, seed=4, jobs=1)
        estimates = {res.cell(0, s).estimate for s in res.series}
        assert len(estimates) == 1


class TestSpecValidation:
    def test_empty_sweep_rejected(self):
        with pytest.raises(ExperimentError):
            tiny = tiny_spec()
            ExperimentSpec(
                name="x", title="x", x_label="x", x_values=(),
                series=("A",), config_for=tiny.config_for,
            )

    def test_duplicate_series_rejected(self):
        with pytest.raises(ExperimentError):
            tiny_spec(series=("PURE", "PURE"))
