"""Golden store keys: ``cell_chunk_key`` pinned across releases.

Every persistent store — local caches, shared sweep stores, the
service's ``--cache-dir`` — is addressed by these digests.  If any of
them drifts (a renamed config field, a default change that leaks into
``to_dict``, a canonicalization tweak), every existing store silently
goes cold and distributed workers recompute the world.  These literals
make that a loud, deliberate event: changing key semantics MUST bump
``CODE_SALT`` (which namespaces old records away) and re-pin the
hashes here, in the same commit.
"""

from __future__ import annotations

from repro.experiments import TrialConfig
from repro.experiments.runner import cell_chunk_key
from repro.store import CODE_SALT, store_key
from repro.workload import WorkloadParams

# The pinned release values.  Do not "fix" a mismatch by editing a
# hash alone — see the module docstring.
GOLDEN_SALT = "trial-semantics/1"
GOLDEN_DEFAULTS = (
    "179ebbe69de72f2d04131bc968b5776f6686bc4ceff353594e80180a8c16f643"
)
GOLDEN_RICH = (
    "4d5cfc334c2cd1bbf462d8bc49796ef36c2c75550b3259fca8255af43c3efb77"
)
GOLDEN_STORE_KEY = (
    "1da217dd2fd31b5bdad8400fbe783990f79e6399c12ec3d298f1bd73e58fdb90"
)


def test_code_salt_is_pinned():
    assert CODE_SALT == GOLDEN_SALT


def test_store_key_canonicalization_is_pinned():
    assert store_key("x", {"a": 1}) == GOLDEN_STORE_KEY


def test_default_config_chunk_key_is_pinned():
    config = TrialConfig(workload=WorkloadParams(m=4), metric="ADAPT-L")
    assert cell_chunk_key(config, [1, 2, 3]) == GOLDEN_DEFAULTS


def test_rich_config_chunk_key_is_pinned():
    # Non-default workload ranges plus estimator/bus options: covers
    # the config fields the default-config key never exercises.
    config = TrialConfig(
        workload=WorkloadParams(
            m=3, n_tasks_range=(12, 16), depth_range=(4, 6)
        ),
        metric="NORM",
        estimator="mean",
        contention_bus=True,
    )
    assert cell_chunk_key(config, [1001, 1002]) == GOLDEN_RICH


def test_key_inputs_are_exactly_config_and_seeds():
    # The address must not see jobs/engine/chunk enumeration — that is
    # what lets resumed sweeps, different worker counts, and the
    # service share one store.  Seeds and config must both matter.
    config = TrialConfig(workload=WorkloadParams(m=4), metric="ADAPT-L")
    base = cell_chunk_key(config, [1, 2, 3])
    assert cell_chunk_key(config, [1, 2]) != base
    other = TrialConfig(workload=WorkloadParams(m=5), metric="ADAPT-L")
    assert cell_chunk_key(other, [1, 2, 3]) != base
