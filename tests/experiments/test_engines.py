"""Equivalence tests between the paired and per-cell experiment engines.

The paired engine restructures the work units (one generated workload
per seed, judged by every series) but must not change a single bit of
any cell: trial seeds depend only on ``(root_seed, x_index,
trial_index)``, and everything a :class:`TrialContext` shares is a pure
function of the workload.  These tests pin that contract end to end by
comparing full serialized results across engines, job counts, and chunk
sizes.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentSpec, TrialConfig, run_experiment
from repro.experiments.runner import ENGINE_NAMES
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=3, n_tasks_range=(12, 16), depth_range=(4, 6))


def small_spec():
    def config(x, metric):
        return TrialConfig(
            workload=FAST.with_overrides(m=int(x)), metric=metric
        )

    return ExperimentSpec(
        name="engine-equivalence",
        title="engine equivalence",
        x_label="m",
        x_values=(2, 3),
        series=("PURE", "NORM", "ADAPT-L"),
        config_for=config,
    )


def result_doc(engine, *, jobs=1, chunk_size=8, trials=12):
    doc = run_experiment(
        small_spec(), trials=trials, seed=99, jobs=jobs,
        chunk_size=chunk_size, engine=engine,
    ).to_dict()
    # Wall-clock is the one legitimately engine-dependent field.
    doc.pop("elapsed_seconds", None)
    return doc


class TestEngineEquivalence:
    def test_serial_engines_bit_identical(self):
        assert result_doc("percell") == result_doc("paired")

    def test_parallel_paired_matches_serial_percell(self):
        assert result_doc("percell") == result_doc("paired", jobs=2)

    def test_chunking_preserves_counts_exactly_and_means_closely(self):
        """chunk_size regroups partial sums: counts must stay exact.

        The mean-laxity/lateness merge is a weighted average of partial
        means, so regrouping may move those by floating-point rounding —
        everything counted (successes, trials, degenerates) is exact.
        """
        baseline = run_experiment(
            small_spec(), trials=12, seed=99, jobs=1, chunk_size=12
        )
        for chunk_size in (1, 5):
            other = run_experiment(
                small_spec(), trials=12, seed=99, jobs=1,
                chunk_size=chunk_size,
            )
            for key, cell in baseline.cells.items():
                o = other.cells[key]
                assert o.estimate == cell.estimate
                assert o.degenerate == cell.degenerate
                assert o.lateness_trials == cell.lateness_trials
                assert o.mean_min_laxity == pytest.approx(
                    cell.mean_min_laxity, rel=1e-9, nan_ok=True
                )
                assert o.mean_max_lateness == pytest.approx(
                    cell.mean_max_lateness, rel=1e-9, nan_ok=True
                )


class TestEngineSelection:
    def test_engine_names_registry(self):
        assert set(ENGINE_NAMES) == {"paired", "paired-ref", "percell"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ExperimentError, match="unknown engine"):
            run_experiment(small_spec(), trials=1, jobs=1, engine="turbo")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ExperimentError, match="chunk_size"):
            run_experiment(small_spec(), trials=1, jobs=1, chunk_size=0)
