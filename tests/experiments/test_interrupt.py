"""Ctrl-C on a parallel ``run_experiment`` must stop *now*, leak-free.

The historical failure mode: ``with ProcessPoolExecutor(...)`` on
KeyboardInterrupt runs ``shutdown(wait=True)``, which quietly computes
every queued unit before letting the interpreter exit — a Ctrl-C that
keeps burning CPU for minutes.  ``_run_pool`` cancels queued futures
and terminates the workers instead.  Verified from the outside: a
child process running a large parallel sweep gets SIGINT (to the child
alone — its pool workers see nothing, like a real terminal foreground
process group only delivers to the leader here), and must exit
promptly, report the interrupt, and leave no worker processes behind.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import repro

_SRC = str(Path(repro.__file__).resolve().parents[1])

#: A sweep sized to run for minutes if the interrupt were mishandled:
#: many queued units on few workers, so cancellation has real work to
#: discard.  ``RUNNING`` flushes right before the pool spins up.
_CHILD = textwrap.dedent(
    """
    import sys
    from repro.experiments.figures import get_figure_spec
    from repro.experiments.runner import run_experiment

    print("RUNNING", flush=True)
    try:
        run_experiment(
            get_figure_spec("fig2"), trials=512, jobs=2, chunk_size=4
        )
    except KeyboardInterrupt:
        print("INTERRUPTED", flush=True)
        sys.exit(130)
    print("FINISHED", flush=True)  # must not be reached
    sys.exit(0)
    """
)


def test_sigint_cancels_promptly_and_leaks_no_workers():
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": _SRC},
        start_new_session=True,  # its pool becomes its own process group
    )
    try:
        assert b"RUNNING" in proc.stdout.readline()
        time.sleep(2.0)  # let the pool fill with queued futures
        os.kill(proc.pid, signal.SIGINT)  # the parent only, like a TTY
        start = time.monotonic()
        out, _ = proc.communicate(timeout=60)
        elapsed = time.monotonic() - start
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup path
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()
    assert proc.returncode == 130, out
    assert b"INTERRUPTED" in out and b"FINISHED" not in out
    # Prompt: worlds apart from the ~minutes the queued units would
    # take.  The bound must absorb spawn-context worker startup and
    # teardown on a saturated single-CPU box (observed >20 s under
    # load), so it is generous — the regression it guards against is
    # two orders of magnitude larger.
    assert elapsed < 45.0
    # No leaked workers: every process of the child's group is gone.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            os.killpg(proc.pid, 0)
        except ProcessLookupError:
            break  # group fully reaped
        time.sleep(0.2)
    else:
        os.killpg(proc.pid, signal.SIGKILL)  # clean up before failing
        raise AssertionError("worker processes outlived the interrupt")
