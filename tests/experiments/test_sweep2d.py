"""Unit tests for 2D sweeps."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import Sweep2DResult, TrialConfig, heatmap, run_sweep2d
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=2, n_tasks_range=(10, 14), depth_range=(4, 6))


def config_for(m, olr):
    return TrialConfig(
        workload=FAST.with_overrides(m=int(m), olr=float(olr)),
        metric="ADAPT-L",
    )


class TestRunSweep2D:
    def test_grid_shape(self):
        res = run_sweep2d(
            config_for, (2, 3), (0.6, 0.8, 1.0),
            trials=4, seed=1, jobs=1,
            x_label="m", y_label="OLR",
        )
        assert len(res.cells) == 6
        grid = res.ratio_grid()
        assert len(grid) == 3 and len(grid[0]) == 2
        assert all(0.0 <= r <= 1.0 for row in grid for r in row)

    def test_deterministic_and_job_invariant(self):
        r1 = run_sweep2d(config_for, (2,), (0.6, 1.0), trials=6, seed=3, jobs=1)
        r2 = run_sweep2d(config_for, (2,), (0.6, 1.0), trials=6, seed=3, jobs=2)
        for key in r1.cells:
            assert r1.cells[key].estimate == r2.cells[key].estimate

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_sweep2d(config_for, (), (1,), trials=1)
        with pytest.raises(ExperimentError):
            run_sweep2d(config_for, (1,), (1,), trials=0)

    def test_missing_cell_raises(self):
        res = Sweep2DResult("t", "x", "y", [1], [1])
        with pytest.raises(ExperimentError):
            res.cell(0, 0)

    def test_to_dict(self):
        res = run_sweep2d(config_for, (2,), (0.8,), trials=2, seed=1, jobs=1)
        doc = res.to_dict()
        assert doc["format"] == "repro.sweep2d/1"
        assert doc["ratios"]


class TestHeatmap:
    def test_renders(self):
        res = run_sweep2d(
            config_for, (2, 3), (0.6, 1.0),
            trials=4, seed=1, jobs=1,
            title="m x OLR", x_label="m", y_label="OLR",
        )
        out = heatmap(res)
        assert "m x OLR" in out
        assert "OLR rising" in out
        assert len(out.splitlines()) == 2 + 2 + 1
