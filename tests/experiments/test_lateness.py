"""Unit tests for the maximum-lateness secondary measure (§4.2)."""

import math

import pytest

from repro.experiments import (
    TrialConfig,
    get_figure_spec,
    lateness_table,
    render_report,
    run_cell,
    run_experiment,
    run_trial,
)
from repro.experiments.runner import _cell_seeds
from repro.workload import WorkloadParams

FAST = WorkloadParams(m=2, n_tasks_range=(10, 14), depth_range=(4, 6))


class TestTrialLateness:
    def test_lateness_measured_when_requested(self):
        cfg = TrialConfig(
            workload=FAST.with_overrides(olr=0.4), measure_lateness=True
        )
        outs = [run_trial(cfg, s) for s in _cell_seeds(5, 0, 10)]
        assert all(not math.isnan(o.max_lateness) for o in outs)
        # the tight OLR guarantees some misses -> positive lateness
        assert any(o.max_lateness > 0 for o in outs)

    def test_fail_fast_mode_has_nan_on_failures(self):
        cfg = TrialConfig(workload=FAST.with_overrides(olr=0.4))
        outs = [run_trial(cfg, s) for s in _cell_seeds(5, 0, 10)]
        failed = [o for o in outs if not o.success]
        assert failed
        assert all(math.isnan(o.max_lateness) for o in failed)

    def test_feasible_trials_have_nonpositive_lateness(self):
        cfg = TrialConfig(
            workload=FAST.with_overrides(olr=1.5), measure_lateness=True
        )
        outs = [run_trial(cfg, s) for s in _cell_seeds(6, 0, 10)]
        for o in outs:
            if o.success:
                assert o.max_lateness <= 1e-9


class TestCellAggregation:
    def test_mean_lateness_aggregated(self):
        cfg = TrialConfig(
            workload=FAST.with_overrides(olr=1.2), measure_lateness=True
        )
        cell = run_cell(cfg, _cell_seeds(7, 0, 8))
        assert cell.lateness_trials == 8
        assert not math.isnan(cell.mean_max_lateness)

    def test_merge_weights_by_lateness_trials(self):
        from repro.analysis import BinomialEstimate
        from repro.experiments.runner import CellResult

        a = CellResult(
            BinomialEstimate(1, 2), mean_max_lateness=-10.0, lateness_trials=2
        )
        b = CellResult(
            BinomialEstimate(2, 2), mean_max_lateness=-40.0, lateness_trials=6
        )
        m = a.merged(b)
        assert m.lateness_trials == 8
        assert m.mean_max_lateness == pytest.approx(
            (-10.0 * 2 - 40.0 * 6) / 8
        )

    def test_merge_with_no_lateness_stays_nan(self):
        from repro.analysis import BinomialEstimate
        from repro.experiments.runner import CellResult

        a = CellResult(BinomialEstimate(1, 2))
        b = CellResult(BinomialEstimate(0, 2))
        assert math.isnan(a.merged(b).mean_max_lateness)


class TestLatenessFigure:
    def test_registered(self):
        spec = get_figure_spec("abl-lateness")
        cfg = spec.config_for(1.0, "PURE")
        assert cfg.measure_lateness

    def test_report_includes_lateness_table(self):
        spec = get_figure_spec("abl-lateness")
        # shrink the sweep for test speed: run just the spec's configs
        # on tiny workloads
        def tiny(x, s):
            base = spec.config_for(x, s)
            return TrialConfig(
                workload=FAST.with_overrides(olr=base.workload.olr),
                metric=base.metric,
                measure_lateness=True,
            )

        from repro.experiments import ExperimentSpec

        small = ExperimentSpec(
            name=spec.name, title=spec.title, x_label=spec.x_label,
            x_values=spec.x_values[:2], series=spec.series[:2],
            config_for=tiny,
        )
        result = run_experiment(small, trials=4, seed=9, jobs=1)
        table = lateness_table(result)
        assert "max lateness" in table
        report = render_report(result)
        assert "max lateness" in report  # auto-included when measured
